package main

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"

	"github.com/quittree/quit"
	"github.com/quittree/quit/internal/shard"
)

// server wires the three serving layers over one sharded store:
//
//	writes  → coalescer → per-shard PutBatch group commit → invalidate → ack
//	reads   → hot-key cache → (miss) tree Get
//
// The ordering in the write path is the server's one correctness
// obligation: a response is sent only after the write's group commit is
// durable AND its cache entry is invalidated, so a client that saw its
// 2xx can never read a pre-write value (see internal/shard.Cache).
type server struct {
	tree  *shard.Tree[int64, string]
	co    *shard.Coalescer[int64, string]
	cache *shard.Cache[int64, string]
}

func newMux(s *server) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/get", s.handleGet)
	mux.HandleFunc("/put", s.handlePut)
	mux.HandleFunc("/batch", s.handleBatch)
	mux.HandleFunc("/delete", s.handleDelete)
	mux.HandleFunc("/range", s.handleRange)
	mux.HandleFunc("/len", s.handleLen)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

func keyParam(w http.ResponseWriter, r *http.Request) (int64, bool) {
	k, err := strconv.ParseInt(r.URL.Query().Get("key"), 10, 64)
	if err != nil {
		http.Error(w, "bad or missing key parameter", http.StatusBadRequest)
		return 0, false
	}
	return k, true
}

func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	if errors.Is(err, quit.ErrReadOnly) {
		// Degraded shard: the canonical "try again later / free space"
		// signal. Other shards keep serving.
		code = http.StatusServiceUnavailable
	}
	http.Error(w, err.Error(), code)
}

// GET /get?key=N — read through the hot-key cache.
func (s *server) handleGet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	k, ok := keyParam(w, r)
	if !ok {
		return
	}
	v, ok := s.cache.GetOrLoad(k, s.tree.Get)
	if !ok {
		http.NotFound(w, r)
		return
	}
	io.WriteString(w, v)
}

// POST /put?key=N — the value is the `value` query parameter when
// present, otherwise the request body. Enqueued into the coalescer; the
// 204 is sent only after the write's group commit.
func (s *server) handlePut(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost && r.Method != http.MethodPut {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	k, ok := keyParam(w, r)
	if !ok {
		return
	}
	var val string
	if q := r.URL.Query(); q.Has("value") {
		val = q.Get("value")
	} else {
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			http.Error(w, "reading body", http.StatusBadRequest)
			return
		}
		val = string(body)
	}
	if err := s.co.Put(k, val); err != nil {
		writeErr(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

type batchEntry struct {
	Key   int64  `json:"key"`
	Value string `json:"value"`
}

// POST /batch with a JSON array of {key, value} — already a batch, so it
// routes straight to the sharded PutBatch (one classify pass, parallel
// per-shard group commits), then invalidates before responding.
func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var entries []batchEntry
	if err := json.NewDecoder(io.LimitReader(r.Body, 64<<20)).Decode(&entries); err != nil {
		http.Error(w, "bad JSON body: "+err.Error(), http.StatusBadRequest)
		return
	}
	keys := make([]int64, len(entries))
	vals := make([]string, len(entries))
	for i, e := range entries {
		keys[i] = e.Key
		vals[i] = e.Value
	}
	res, err := s.tree.PutBatch(keys, vals)
	if err != nil {
		writeErr(w, err)
		return
	}
	s.cache.InvalidateBatch(keys)
	updated := 0
	for _, pr := range res {
		if pr.Existed {
			updated++
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]int{
		"applied": len(res),
		"updated": updated,
	})
}

// DELETE /delete?key=N — durable delete, then invalidate, then respond.
func (s *server) handleDelete(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodDelete && r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	k, ok := keyParam(w, r)
	if !ok {
		return
	}
	_, existed, err := s.tree.Delete(k)
	if err != nil {
		writeErr(w, err)
		return
	}
	s.cache.Invalidate(k)
	if !existed {
		http.NotFound(w, r)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// GET /range?start=N&end=M[&limit=L] — merged cross-shard scan.
func (s *server) handleRange(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	start, err1 := strconv.ParseInt(q.Get("start"), 10, 64)
	end, err2 := strconv.ParseInt(q.Get("end"), 10, 64)
	if err1 != nil || err2 != nil {
		http.Error(w, "bad or missing start/end parameters", http.StatusBadRequest)
		return
	}
	limit := 1000
	if l := q.Get("limit"); l != "" {
		limit, err1 = strconv.Atoi(l)
		if err1 != nil || limit < 1 {
			http.Error(w, "bad limit parameter", http.StatusBadRequest)
			return
		}
	}
	out := make([]batchEntry, 0, 16)
	s.tree.Range(start, end, func(k int64, v string) bool {
		out = append(out, batchEntry{Key: k, Value: v})
		return len(out) < limit
	})
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// GET /len
func (s *server) handleLen(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]int{"len": s.tree.Len()})
}

// statsResponse is the /stats payload: the full observability surface of
// the serving stack, one scrape.
type statsResponse struct {
	Shards     int                     `json:"shards"`
	Tree       quit.Stats              `json:"tree"`
	Durability quit.DurabilityStats    `json:"durability"`
	Router     shard.Counters          `json:"router"`
	Coalescer  shard.CoalescerCounters `json:"coalescer"`
	Cache      shard.CacheCounters     `json:"cache"`
	CacheLen   int                     `json:"cache_len"`
}

// GET /stats
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	resp := statsResponse{
		Shards:     s.tree.Shards(),
		Tree:       s.tree.Stats(),
		Durability: s.tree.DurabilityStats(),
		Router:     s.tree.Counters(),
		Coalescer:  s.co.Counters(),
		Cache:      s.cache.Counters(),
		CacheLen:   s.cache.Len(),
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp)
}
