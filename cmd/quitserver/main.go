// Command quitserver serves a key-range-sharded durable QuIT store over
// HTTP with server-side group commit: concurrent single-key writes are
// coalesced into per-shard batches (one WAL fsync per group, not per
// request) and acknowledged only after their group's commit; reads go
// through a sharded hot-key LRU cache invalidated between commit and
// ack. See DESIGN.md §12.
//
// Endpoints:
//
//	GET    /get?key=N                   value (404 if absent)
//	POST   /put?key=N        body=value 204 after durable group commit
//	POST   /batch            JSON [{"key":1,"value":"x"},...]
//	DELETE /delete?key=N                204 (404 if absent)
//	GET    /range?start=N&end=M&limit=L JSON entries, merged across shards
//	GET    /len
//	GET    /stats                       tree + durability + serving counters
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/quittree/quit"
	"github.com/quittree/quit/internal/shard"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		dir         = flag.String("dir", "quitserver-data", "store directory (shard subdirs + manifest)")
		shards      = flag.Int("shards", 4, "shard count for a fresh store (the manifest wins on reopen)")
		keyspan     = flag.Int64("keyspan", 1<<31, "expected key upper bound for a fresh store's shard boundaries")
		batchWindow = flag.Duration("batch-window", 2*time.Millisecond, "coalescer group-commit window")
		batchMax    = flag.Int("batch-max", 256, "coalescer max writes per group")
		cacheSize   = flag.Int("cache", 4096, "hot-key cache capacity in entries (0 disables... well, nearly: 1)")
		cacheWays   = flag.Int("cache-ways", 16, "hot-key cache lock-sharding ways")
		syncMode    = flag.String("sync", "always", "WAL sync policy: always | interval | never")
	)
	flag.Parse()

	var policy quit.SyncPolicy
	switch *syncMode {
	case "always":
		policy = quit.SyncAlways
	case "interval":
		policy = quit.SyncInterval
	case "never":
		policy = quit.SyncNever
	default:
		log.Fatalf("unknown -sync %q (want always | interval | never)", *syncMode)
	}

	// A fresh store has no key distribution to sample, so synthesize an
	// even spread over [0, keyspan) — server keys are typically dense
	// small integers, for which the full-domain fallback would park
	// everything in one shard. On reopen the manifest overrides all this.
	sample := make([]int64, 1024)
	for i := range sample {
		sample[i] = int64(i) * *keyspan / int64(len(sample))
	}
	tree, err := shard.Open[int64, string](*dir, quit.ShardedOptions{
		DurableOptions: quit.DurableOptions{Sync: policy},
		Shards:         *shards,
	}, sample)
	if err != nil {
		log.Fatalf("opening store: %v", err)
	}
	for i, rec := range tree.Recovery() {
		if rec.RecordsReplayed > 0 || rec.Snapshot != "" {
			log.Printf("shard %d: recovered snapshot=%q +%d records", i, rec.Snapshot, rec.RecordsReplayed)
		}
	}

	cache := shard.NewCache[int64, string](*cacheSize, *cacheWays)
	co := shard.NewCoalescer(tree, *batchMax, *batchWindow, cache.InvalidateBatch)
	srv := &http.Server{
		Addr:    *addr,
		Handler: newMux(&server{tree: tree, co: co, cache: cache}),
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		<-sig
		log.Print("shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	log.Printf("quitserver: %d shards in %s, sync=%s, serving on %s", tree.Shards(), *dir, policy, *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("serve: %v", err)
	}
	<-done
	// Drain in dependency order: no new requests → flush pending groups →
	// sync and close every shard.
	co.Close()
	if err := tree.Close(); err != nil {
		log.Fatalf("closing store: %v", err)
	}
	fmt.Println("quitserver: clean shutdown")
}
