// Benchmarks mapping one-to-one onto the paper's tables and figures (see
// DESIGN.md §2 for the index). Each benchmark exercises the workload of its
// figure and, where the figure reports a non-timing metric (fast-insert
// fraction, occupancy, leaf accesses), attaches it via b.ReportMetric.
//
// Run everything:   go test -bench=. -benchmem
// One figure:       go test -bench=BenchmarkFig08 -benchtime=2000000x
package quit_test

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync/atomic"
	"testing"

	quit "github.com/quittree/quit"
	"github.com/quittree/quit/internal/betree"
	"github.com/quittree/quit/internal/bods"
	"github.com/quittree/quit/internal/core"
	"github.com/quittree/quit/internal/stock"
	"github.com/quittree/quit/internal/sware"
)

// benchKeys generates a BoDS stream sized to b.N (untimed).
func benchKeys(b *testing.B, k, l float64) []int64 {
	b.Helper()
	b.StopTimer()
	keys := bods.Generate(bods.Spec{N: b.N, K: k, L: l, Seed: 42})
	b.StartTimer()
	return keys
}

func benchIngest(b *testing.B, design quit.Design, k float64) *quit.Tree[int64, int64] {
	keys := benchKeys(b, k, 1.0)
	idx := quit.New[int64, int64](quit.Options{Design: design})
	for _, key := range keys {
		idx.Insert(key, key)
	}
	b.ReportMetric(idx.Stats().FastInsertFraction()*100, "%fast")
	return idx
}

func benchIngestSware(b *testing.B, k float64) *sware.Index {
	keys := benchKeys(b, k, 1.0)
	buf := b.N / 100
	if buf < 1024 {
		buf = 1024
	}
	ix := sware.New(sware.Config{BufferEntries: buf})
	for _, key := range keys {
		ix.Put(key, key)
	}
	return ix
}

// --- Figure 1a: insert + lookup latency teaser -------------------------

func BenchmarkFig01aInsert(b *testing.B) {
	for _, d := range []struct {
		name   string
		design quit.Design
	}{{"tail", quit.TailBPlusTree}, {"QuIT", quit.QuIT}} {
		for _, lvl := range []struct {
			name string
			k    float64
		}{{"fully", 0}, {"near", 0.05}, {"less", 0.25}} {
			b.Run(d.name+"/"+lvl.name, func(b *testing.B) {
				benchIngest(b, d.design, lvl.k)
			})
		}
	}
	b.Run("SWARE/near", func(b *testing.B) { benchIngestSware(b, 0.05) })
}

func BenchmarkFig01aLookup(b *testing.B) {
	const n = 500_000
	keys := bods.Generate(bods.Spec{N: n, K: 0.05, L: 1, Seed: 42})
	build := func(d quit.Design) *quit.Tree[int64, int64] {
		idx := quit.New[int64, int64](quit.Options{Design: d})
		for _, k := range keys {
			idx.Insert(k, k)
		}
		return idx
	}
	for _, d := range []struct {
		name   string
		design quit.Design
	}{{"tail", quit.TailBPlusTree}, {"QuIT", quit.QuIT}} {
		idx := build(d.design)
		b.Run(d.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx.Get(int64(rng.Intn(n)))
			}
		})
	}
	b.Run("SWARE", func(b *testing.B) {
		ix := sware.New(sware.Config{BufferEntries: n / 100})
		for _, k := range keys {
			ix.Put(k, k)
		}
		rng := rand.New(rand.NewSource(1))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ix.Get(int64(rng.Intn(n)))
		}
	})
}

// --- Figure 3 / Figure 5a: fast path collapse --------------------------

func BenchmarkFig03TailIngest(b *testing.B) {
	for _, k := range []float64{0, 0.0005, 0.01, 0.10} {
		b.Run(fmt.Sprintf("K=%g%%", k*100), func(b *testing.B) {
			benchIngest(b, quit.TailBPlusTree, k)
		})
	}
}

func BenchmarkFig05aLILIngest(b *testing.B) {
	for _, k := range []float64{0, 0.01, 0.03} {
		b.Run(fmt.Sprintf("K=%g%%", k*100), func(b *testing.B) {
			benchIngest(b, quit.LILBPlusTree, k)
		})
	}
}

// BenchmarkFig05bModel evaluates the Eq. (1) analytic model; it reports the
// modeled fast fraction at K=25% as a metric (the code path under test is
// the simulation driver used by the figure).
func BenchmarkFig05bModel(b *testing.B) {
	k := 0.25
	acc := 0.0
	for i := 0; i < b.N; i++ {
		acc += (1 - k) * (1 - k)
	}
	b.ReportMetric((1-k)*(1-k)*100, "%fast-model")
	_ = acc
}

// --- Figure 8 / Figure 9: ingestion speedup & fast-insert fraction -----

func BenchmarkFig08Ingest(b *testing.B) {
	designs := []struct {
		name   string
		design quit.Design
	}{
		{"btree", quit.BPlusTree}, {"tail", quit.TailBPlusTree},
		{"lil", quit.LILBPlusTree}, {"QuIT", quit.QuIT},
	}
	for _, d := range designs {
		for _, k := range []float64{0, 0.05, 0.25, 1.0} {
			b.Run(fmt.Sprintf("%s/K=%g%%", d.name, k*100), func(b *testing.B) {
				benchIngest(b, d.design, k)
			})
		}
	}
}

func BenchmarkFig09FastFraction(b *testing.B) {
	// Figure 9 is the %fast metric of the Fig. 8 runs; exercised here for
	// the pole-only ablation the paper's Fig. 12 isolates.
	b.Run("pole", func(b *testing.B) {
		keys := benchKeys(b, 0.05, 1.0)
		idx := quit.New[int64, int64](quit.Options{Design: quit.POLEBPlusTree})
		for _, key := range keys {
			idx.Insert(key, key)
		}
		b.ReportMetric(idx.Stats().FastInsertFraction()*100, "%fast")
	})
}

// --- Figure 10: occupancy, point lookups, range scans ------------------

func BenchmarkFig10aOccupancy(b *testing.B) {
	for _, d := range []struct {
		name   string
		design quit.Design
	}{{"btree", quit.BPlusTree}, {"QuIT", quit.QuIT}} {
		b.Run(d.name, func(b *testing.B) {
			idx := benchIngest(b, d.design, 0)
			b.ReportMetric(idx.AvgLeafOccupancy()*100, "%occupancy")
		})
	}
}

func BenchmarkFig10bPointLookup(b *testing.B) {
	const n = 500_000
	keys := bods.Generate(bods.Spec{N: n, K: 0.05, L: 1, Seed: 42})
	for _, d := range []struct {
		name   string
		design quit.Design
	}{{"btree", quit.BPlusTree}, {"QuIT", quit.QuIT}} {
		idx := quit.New[int64, int64](quit.Options{Design: d.design})
		for _, k := range keys {
			idx.Insert(k, k)
		}
		b.Run(d.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx.Get(int64(rng.Intn(n)))
			}
		})
	}
}

func BenchmarkFig10cRangeScan(b *testing.B) {
	const n = 500_000
	keys := bods.Generate(bods.Spec{N: n, K: 0.05, L: 1, Seed: 42})
	width := int64(n / 100) // 1% selectivity
	for _, d := range []struct {
		name   string
		design quit.Design
	}{{"btree", quit.BPlusTree}, {"QuIT", quit.QuIT}} {
		idx := quit.New[int64, int64](quit.Options{Design: d.design})
		for _, k := range keys {
			idx.Insert(k, k)
		}
		b.Run(d.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			visited := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := int64(rng.Intn(n))
				visited += idx.Range(s, s+width, func(int64, int64) bool { return true })
			}
			b.ReportMetric(float64(visited)/float64(b.N), "entries/op")
		})
	}
}

// --- Table 1 / Table 2: metadata and memory footprint ------------------

func BenchmarkTab01MetadataOverhead(b *testing.B) {
	// Table 1 is a design digest; as a benchmark we quantify that the QuIT
	// tree object (which embeds all fast-path metadata) costs O(1) memory
	// regardless of tree size: construct trees per iteration.
	for i := 0; i < b.N; i++ {
		idx := quit.New[int64, int64](quit.Options{})
		idx.Insert(1, 1)
	}
}

func BenchmarkTab02MemoryFootprint(b *testing.B) {
	for _, d := range []struct {
		name   string
		design quit.Design
	}{{"btree", quit.BPlusTree}, {"QuIT", quit.QuIT}} {
		b.Run(d.name, func(b *testing.B) {
			idx := benchIngest(b, d.design, 0)
			b.ReportMetric(float64(idx.MemoryFootprint())/float64(max(b.N, 1)), "bytes/entry")
		})
	}
}

// --- Figure 11: K x L corners ------------------------------------------

func BenchmarkFig11Corners(b *testing.B) {
	for _, kl := range []struct{ k, l float64 }{
		{0.01, 0.01}, {0.01, 0.5}, {0.5, 0.01}, {0.5, 0.5},
	} {
		b.Run(fmt.Sprintf("K=%g%%_L=%g%%", kl.k*100, kl.l*100), func(b *testing.B) {
			b.StopTimer()
			keys := bods.Generate(bods.Spec{N: b.N, K: kl.k, L: kl.l, Seed: 42})
			b.StartTimer()
			idx := quit.New[int64, int64](quit.Options{})
			for _, key := range keys {
				idx.Insert(key, key)
			}
			b.ReportMetric(idx.Stats().FastInsertFraction()*100, "%fast")
			b.ReportMetric(idx.AvgLeafOccupancy()*100, "%occupancy")
		})
	}
}

// --- Table 3: size scaling (drive with -benchtime=Nx) ------------------

func BenchmarkTab03SizeScaling(b *testing.B) {
	for _, lvl := range []struct {
		name string
		k, l float64
	}{{"fully", 0, 1}, {"nearly", 0.05, 0.05}, {"less", 0.25, 0.25}} {
		b.Run(lvl.name, func(b *testing.B) {
			b.StopTimer()
			keys := bods.Generate(bods.Spec{N: b.N, K: lvl.k, L: lvl.l, Seed: 42})
			b.StartTimer()
			idx := quit.New[int64, int64](quit.Options{})
			for _, key := range keys {
				idx.Insert(key, key)
			}
			b.ReportMetric(idx.Stats().FastInsertFraction()*100, "%fast")
		})
	}
}

// --- Figure 12: alternating-sortedness stress test ----------------------

func BenchmarkFig12Stress(b *testing.B) {
	for _, d := range []struct {
		name   string
		design quit.Design
	}{
		{"tail", quit.TailBPlusTree}, {"lil", quit.LILBPlusTree},
		{"pole", quit.POLEBPlusTree}, {"QuIT", quit.QuIT},
	} {
		b.Run(d.name, func(b *testing.B) {
			b.StopTimer()
			var keys []int64
			if segN := b.N / 5; segN >= 1 {
				keys = bods.GenerateSegments([]bods.Segment{
					{N: segN, K: 0.10, L: 1}, {N: segN, K: 1, L: 1},
					{N: segN, K: 0.10, L: 1}, {N: segN, K: 1, L: 1},
					{N: b.N - 4*segN, K: 0.10, L: 1},
				}, 42)
			} else {
				keys = bods.Generate(bods.Spec{N: b.N, K: 0.10, L: 1, Seed: 42})
			}
			b.StartTimer()
			idx := quit.New[int64, int64](quit.Options{Design: d.design})
			for _, key := range keys {
				idx.Insert(key, key)
			}
			b.ReportMetric(idx.Stats().FastInsertFraction()*100, "%fast")
		})
	}
}

// --- Figure 13: concurrent throughput (drive with -cpu=1,2,4,8) --------

func BenchmarkFig13ConcurrentInsert(b *testing.B) {
	for _, d := range []struct {
		name   string
		design quit.Design
	}{{"QuIT", quit.QuIT}, {"btree", quit.BPlusTree}} {
		b.Run(d.name, func(b *testing.B) {
			idx := quit.New[int64, int64](quit.Options{Design: d.design, Synchronized: true})
			var seq atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					k := seq.Add(1) // contended in-order frontier
					idx.Insert(k, k)
				}
			})
		})
	}
}

func BenchmarkFig13ConcurrentLookup(b *testing.B) {
	const n = 500_000
	for _, d := range []struct {
		name   string
		design quit.Design
	}{{"QuIT", quit.QuIT}, {"btree", quit.BPlusTree}} {
		idx := quit.New[int64, int64](quit.Options{Design: d.design, Synchronized: true})
		for i := int64(0); i < n; i++ {
			idx.Insert(i, i)
		}
		b.Run(d.name, func(b *testing.B) {
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(9))
				for pb.Next() {
					idx.Get(int64(rng.Intn(n)))
				}
			})
		})
	}
}

// --- Figure 14: SWARE vs QuIT -------------------------------------------

func BenchmarkFig14Insert(b *testing.B) {
	b.Run("SWARE", func(b *testing.B) { benchIngestSware(b, 0.05) })
	b.Run("QuIT", func(b *testing.B) { benchIngest(b, quit.QuIT, 0.05) })
}

func BenchmarkFig14Lookup(b *testing.B) {
	const n = 500_000
	keys := bods.Generate(bods.Spec{N: n, K: 0.05, L: 1, Seed: 42})
	b.Run("SWARE", func(b *testing.B) {
		ix := sware.New(sware.Config{BufferEntries: n / 100})
		for _, k := range keys {
			ix.Put(k, k)
		}
		rng := rand.New(rand.NewSource(4))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ix.Get(int64(rng.Intn(n)))
		}
	})
	b.Run("QuIT", func(b *testing.B) {
		idx := quit.New[int64, int64](quit.Options{})
		for _, k := range keys {
			idx.Insert(k, k)
		}
		rng := rand.New(rand.NewSource(4))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			idx.Get(int64(rng.Intn(n)))
		}
	})
}

// --- Figure 15: stock price streams --------------------------------------

func BenchmarkFig15StockIngest(b *testing.B) {
	for _, d := range []struct {
		name   string
		design quit.Design
	}{
		{"btree", quit.BPlusTree}, {"tail", quit.TailBPlusTree},
		{"lil", quit.LILBPlusTree}, {"QuIT", quit.QuIT},
	} {
		b.Run(d.name, func(b *testing.B) {
			b.StopTimer()
			s := stock.NIFTYLike()
			s.Minutes = b.N
			keys := s.Keys()
			b.StartTimer()
			idx := quit.New[int64, int64](quit.Options{Design: d.design})
			for _, key := range keys {
				idx.Insert(key, key)
			}
			b.ReportMetric(idx.Stats().FastInsertFraction()*100, "%fast")
		})
	}
}

// --- Ablations (DESIGN.md design decisions) ------------------------------

// BenchmarkAblationCatchUpRule compares the paper's prose catch-up rule
// (IKR-gated) against Algorithm 1's literal unconditional rule.
func BenchmarkAblationCatchUpRule(b *testing.B) {
	for _, u := range []struct {
		name   string
		uncond bool
	}{{"ikr-gated", false}, {"unconditional", true}} {
		b.Run(u.name, func(b *testing.B) {
			keys := benchKeys(b, 0.25, 1.0)
			tr := core.New[int64, int64](core.Config{Mode: core.ModeQuIT, UnconditionalCatchUp: u.uncond})
			for _, key := range keys {
				tr.Put(key, key)
			}
			b.ReportMetric(tr.Stats().FastInsertFraction()*100, "%fast")
		})
	}
}

// BenchmarkAblationSpaceOptimizations isolates QuIT's variable split,
// redistribution and reset (ModeQuIT) from the bare pole predictor
// (ModePOLE).
func BenchmarkAblationSpaceOptimizations(b *testing.B) {
	for _, m := range []struct {
		name string
		mode core.Mode
	}{{"pole-only", core.ModePOLE}, {"full-QuIT", core.ModeQuIT}} {
		b.Run(m.name, func(b *testing.B) {
			keys := benchKeys(b, 0.05, 1.0)
			tr := core.New[int64, int64](core.Config{Mode: m.mode})
			for _, key := range keys {
				tr.Put(key, key)
			}
			b.ReportMetric(tr.Stats().FastInsertFraction()*100, "%fast")
			b.ReportMetric(tr.AvgLeafOccupancy()*100, "%occupancy")
		})
	}
}

// BenchmarkAblationResetThreshold sweeps TR around the paper's
// floor(sqrt(leaf capacity)) default.
func BenchmarkAblationResetThreshold(b *testing.B) {
	for _, tr := range []int{1, 5, 22, 100, 1 << 30} {
		name := "TR=default(22)"
		switch tr {
		case 1:
			name = "TR=1"
		case 5:
			name = "TR=5"
		case 100:
			name = "TR=100"
		case 1 << 30:
			name = "TR=off"
		}
		b.Run(name, func(b *testing.B) {
			keys := benchKeys(b, 0.25, 1.0)
			t := core.New[int64, int64](core.Config{Mode: core.ModeQuIT, ResetThreshold: tr})
			for _, key := range keys {
				t.Put(key, key)
			}
			b.ReportMetric(t.Stats().FastInsertFraction()*100, "%fast")
		})
	}
}

// BenchmarkRelatedWorkBeTree compares the write-optimized Bε-tree (related
// work, §6) against the classical B+-tree and QuIT. Bε-trees amortize
// insertions via message buffers — a trade aimed at I/O-bound settings; in
// this in-memory setting the buffering is pure CPU overhead, which is
// precisely the "orthogonal complexities and overheads" the paper cites as
// its reason for backing SWARE with a plain B+-tree instead (§5.4). QuIT
// wins on near-sorted data by exploiting order rather than batching.
func BenchmarkRelatedWorkBeTree(b *testing.B) {
	for _, lvl := range []struct {
		name string
		k    float64
	}{{"near-sorted", 0.05}, {"scrambled", 1.0}} {
		b.Run("betree/"+lvl.name, func(b *testing.B) {
			keys := benchKeys(b, lvl.k, 1.0)
			tr := betree.New(betree.Config{})
			for _, key := range keys {
				tr.Put(key, key)
			}
		})
		b.Run("QuIT/"+lvl.name, func(b *testing.B) {
			benchIngest(b, quit.QuIT, lvl.k)
		})
		b.Run("btree/"+lvl.name, func(b *testing.B) {
			benchIngest(b, quit.BPlusTree, lvl.k)
		})
	}
}

// --- Durability overhead (DESIGN.md §8) --------------------------------
//
// BenchmarkDurablePut prices the write-ahead log against the in-memory
// tree across the three sync policies and two sortedness levels. The
// ordering to expect: mem < never < interval << always, with the always
// policy dominated by per-write fsync latency of the benchmark machine's
// storage.

func BenchmarkDurablePut(b *testing.B) {
	policies := []struct {
		name   string
		policy quit.SyncPolicy
		mem    bool
	}{
		{"mem-baseline", 0, true},
		{"never", quit.SyncNever, false},
		{"interval", quit.SyncInterval, false},
		{"always", quit.SyncAlways, false},
	}
	for _, lvl := range []struct {
		name string
		k    float64
	}{{"near-sorted", 0.05}, {"sorted", 0.0}} {
		for _, p := range policies {
			b.Run(p.name+"/"+lvl.name, func(b *testing.B) {
				keys := benchKeys(b, lvl.k, 1.0)
				if p.mem {
					idx := quit.New[int64, int64](quit.Options{})
					for _, key := range keys {
						idx.Insert(key, key)
					}
					return
				}
				b.StopTimer()
				d, err := quit.Open[int64, int64](b.TempDir(), quit.DurableOptions{Sync: p.policy})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for _, key := range keys {
					if err := d.Insert(key, key); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				if err := d.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			})
		}
	}
}

// --- Batched write path (DESIGN.md §9) ----------------------------------
//
// BenchmarkBatchIngest prices PutBatch against per-key Put across batch
// sizes and sortedness levels. Acceptance floor for the batched write
// path: batch=256 on near-sorted input (K=5%) at >= 2x the per-key
// throughput. %fast-runs reports the fraction of per-leaf runs that
// resolved through the fast-path metadata without a descent.

func BenchmarkBatchIngest(b *testing.B) {
	levels := []struct {
		name string
		k    float64
	}{{"sorted", 0}, {"near", 0.05}, {"less", 0.25}, {"scrambled", 1.0}}
	for _, lvl := range levels {
		b.Run("perkey/"+lvl.name, func(b *testing.B) {
			benchIngest(b, quit.QuIT, lvl.k)
		})
		for _, bs := range []int{1, 16, 256, 4096} {
			b.Run(fmt.Sprintf("batch=%d/%s", bs, lvl.name), func(b *testing.B) {
				keys := benchKeys(b, lvl.k, 1.0)
				b.StopTimer()
				vals := make([]int64, len(keys))
				copy(vals, keys)
				b.StartTimer()
				idx := quit.New[int64, int64](quit.Options{})
				for i := 0; i < len(keys); i += bs {
					end := i + bs
					if end > len(keys) {
						end = len(keys)
					}
					idx.PutBatch(keys[i:end], vals[i:end])
				}
				st := idx.Stats()
				if st.BatchRuns > 0 {
					b.ReportMetric(float64(st.BatchFastRuns)/float64(st.BatchRuns)*100, "%fast-runs")
				}
			})
		}
	}
}

// countingFS wraps an FS and counts fsync barriers on files, so the
// durable batch benchmarks can report syncs/op — the quantity the single
// framed batch record exists to shrink.
type countingFS struct {
	quit.FS
	syncs *atomic.Int64
}

type countingFile struct {
	quit.File
	syncs *atomic.Int64
}

func (c countingFS) Create(name string) (quit.File, error) {
	f, err := c.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return countingFile{f, c.syncs}, nil
}

func (f countingFile) Sync() error {
	f.syncs.Add(1)
	return f.File.Sync()
}

// osBenchFS mirrors durable.go's production FS for the wrapper above.
type osBenchFS struct{}

func (osBenchFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }
func (osBenchFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names, nil
}
func (osBenchFS) Create(name string) (quit.File, error)   { return os.Create(name) }
func (osBenchFS) Open(name string) (io.ReadCloser, error) { return os.Open(name) }
func (osBenchFS) Rename(o, n string) error                { return os.Rename(o, n) }
func (osBenchFS) Remove(name string) error                { return os.Remove(name) }
func (osBenchFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// BenchmarkDurableBatchPut prices durable batched ingest under SyncAlways
// — the policy where the single framed batch record matters most: one
// fsync per batch instead of one per key. syncs/op is the reported
// fsync amplification.
func BenchmarkDurableBatchPut(b *testing.B) {
	for _, bs := range []int{1, 16, 256, 4096} {
		name := fmt.Sprintf("batch=%d", bs)
		if bs == 1 {
			name = "perkey"
		}
		b.Run(name, func(b *testing.B) {
			keys := benchKeys(b, 0.05, 1.0)
			b.StopTimer()
			vals := make([]int64, len(keys))
			copy(vals, keys)
			var syncs atomic.Int64
			d, err := quit.Open[int64, int64](b.TempDir(), quit.DurableOptions{
				Sync: quit.SyncAlways,
				FS:   countingFS{osBenchFS{}, &syncs},
			})
			if err != nil {
				b.Fatal(err)
			}
			syncs.Store(0)
			b.StartTimer()
			if bs == 1 {
				for i, key := range keys {
					if err := d.Insert(key, vals[i]); err != nil {
						b.Fatal(err)
					}
				}
			} else {
				for i := 0; i < len(keys); i += bs {
					end := i + bs
					if end > len(keys) {
						end = len(keys)
					}
					if _, err := d.PutBatch(keys[i:end], vals[i:end]); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(syncs.Load())/float64(b.N), "syncs/op")
			if err := d.Close(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		})
	}
}

// --- Parallel ingest (DESIGN.md §10) ------------------------------------
//
// BenchmarkPutBatchParallel sweeps the worker pool across sortedness
// levels; workers=1 takes the sequential PutBatch path on the same
// synchronized tree and is the scalability baseline. Note that single-CPU
// hosts (GOMAXPROCS=1) serialize the workers, so speedups there measure
// only the pipeline's overhead; see EXPERIMENTS.md par01.

func BenchmarkPutBatchParallel(b *testing.B) {
	levels := []struct {
		name string
		k    float64
	}{{"sorted", 0}, {"near", 0.05}, {"scrambled", 1.0}}
	const bs = 8192
	for _, lvl := range levels {
		for _, w := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("workers=%d/%s", w, lvl.name), func(b *testing.B) {
				keys := benchKeys(b, lvl.k, 1.0)
				b.StopTimer()
				vals := make([]int64, len(keys))
				copy(vals, keys)
				b.StartTimer()
				idx := quit.New[int64, int64](quit.Options{Synchronized: true})
				for i := 0; i < len(keys); i += bs {
					end := i + bs
					if end > len(keys) {
						end = len(keys)
					}
					idx.PutBatchParallel(keys[i:end], vals[i:end], quit.IngestOptions{Workers: w})
				}
				st := idx.Stats()
				if st.BatchRuns > 0 {
					b.ReportMetric(float64(st.BatchFastRuns)/float64(st.BatchRuns)*100, "%fast-runs")
				}
			})
		}
	}
}

// BenchmarkBuildFromSortedParallel prices the parallel bulk load; the
// input is strictly increasing by contract, so only the worker count is
// swept. workers=1 is the sequential BuildFromSorted. ns/op is per key
// (b.N keys, one build per run).
func BenchmarkBuildFromSortedParallel(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.StopTimer()
			keys := make([]int64, b.N)
			vals := make([]int64, b.N)
			for i := range keys {
				keys[i] = int64(i) * 2
				vals[i] = int64(i)
			}
			idx := quit.New[int64, int64](quit.Options{})
			b.StartTimer()
			if err := idx.BuildFromSortedParallel(keys, vals, 1.0, w); err != nil {
				b.Fatal(err)
			}
		})
	}
}
