# Developer entry points. `make lint` is the one CI runs: quitlint (the
# project's own go vet suite, see tools/quitlint and DESIGN.md §7), plain
# go vet over both modules, and — when installed — the pinned third-party
# checkers. Versions here must stay in sync with tools/go.mod and
# .github/workflows/ci.yml.

GO ?= go
STATICCHECK_VERSION  := v0.6.1
GOVULNCHECK_VERSION  := v1.1.4

QUITLINT  := $(CURDIR)/tools/bin/quitlint
BENCHJSON := $(CURDIR)/tools/bin/benchjson

.PHONY: all build test race fuzz crash lint vet quitlint quitlint-bin benchjson bench-json staticcheck govulncheck clean

all: build test lint

build:
	$(GO) build ./...
	cd tools && $(GO) build ./...

test:
	$(GO) test ./...
	cd tools && $(GO) test ./...

race:
	$(GO) test -race ./...

# 30-second coverage-guided smoke per target over the committed corpora;
# CI runs the same invocations.
fuzz:
	$(GO) test -run '^$$' -fuzz=FuzzTreeOps -fuzztime=30s ./internal/core
	$(GO) test -run '^$$' -fuzz=FuzzWALReplay -fuzztime=30s ./internal/wal

# The crash-recovery matrix (DESIGN.md §8): every schedule point of a
# recorded workload is crashed and recovered — in the single-segment and
# the rotation+auto-checkpoint variants — plus the bit-flip and
# segment-boundary corruption sweeps and the injected write/sync failures
# (transient retry, ENOSPC read-only degradation). CI runs this normally
# and under -race.
crash:
	$(GO) test -run 'TestCrashRecovery|TestDurable' -count=1 .
	$(GO) test -count=1 ./internal/wal ./internal/faultio

quitlint:
	@cd tools && $(GO) build -o bin/quitlint ./quitlint

# Prints the vettool path (and nothing else under -s), so scripts can say:
#   go vet -vettool=$$(make -s quitlint-bin) ./...
quitlint-bin: quitlint
	@echo $(QUITLINT)

benchjson:
	@cd tools && $(GO) build -o bin/benchjson ./benchjson

# The headline benchmark trajectory: the Fig01/Fig08 paper figures, the
# batched write path, the parallel ingest sweeps, the durable batch fsync
# amplification, the leaf probe / mid-leaf-insert microbenchmarks, and —
# this PR's additions — the sharded ingest, coalesced serving write path
# and hot-key cache benchmarks. Raw bench text lands in BENCH_pr10.txt
# (the benchstat baseline) and its JSON rendering in BENCH_pr10.json;
# both are committed so CI can diff against them (and against the
# previous PRs' committed BENCH_pr5.txt / BENCH_pr9.txt). Fixed
# -benchtime keeps the dataset sizes (b.N is the key count for the
# ingest benchmarks) comparable across runs; the durable passes are
# smaller because perkey/per-request SyncAlways really fsyncs per op.
bench-json: benchjson
	$(GO) test -run '^$$' -bench 'BenchmarkFig01a|BenchmarkFig08Ingest$$|BenchmarkBatchIngest$$' -benchtime=500000x -timeout 30m . > BENCH_pr10.txt
	$(GO) test -run '^$$' -bench 'BenchmarkPutBatchParallel$$|BenchmarkBuildFromSortedParallel$$' -benchtime=500000x -timeout 30m . >> BENCH_pr10.txt
	$(GO) test -run '^$$' -bench 'BenchmarkDurableBatchPut$$' -benchtime=20000x -timeout 30m . >> BENCH_pr10.txt
	$(GO) test -run '^$$' -bench 'BenchmarkShardedIngest$$' -benchtime=500000x -timeout 30m . >> BENCH_pr10.txt
	$(GO) test -run '^$$' -bench 'BenchmarkCoalescedPut$$' -benchtime=50000x -timeout 30m . >> BENCH_pr10.txt
	$(GO) test -run '^$$' -bench 'BenchmarkHotKeyCacheGet$$' -benchtime=2000000x -timeout 30m . >> BENCH_pr10.txt
	$(GO) test -run '^$$' -bench 'BenchmarkSearchKeys$$' -benchtime=5000000x ./internal/core >> BENCH_pr10.txt
	$(GO) test -run '^$$' -bench 'BenchmarkMidLeafInsert$$' -benchtime=2000000x ./internal/core >> BENCH_pr10.txt
	$(BENCHJSON) < BENCH_pr10.txt > BENCH_pr10.json

vet:
	$(GO) vet ./...
	cd tools && $(GO) vet ./...

lint: vet quitlint
	$(GO) vet -vettool=$(QUITLINT) ./...
	@$(MAKE) --no-print-directory staticcheck govulncheck

# The third-party checkers are optional locally (this repo builds offline);
# CI installs the pinned versions and they become mandatory there.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	else \
		echo "staticcheck not installed; skipping (CI pins $(STATICCHECK_VERSION):" \
		     "go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi

govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./... ; \
	else \
		echo "govulncheck not installed; skipping (CI pins $(GOVULNCHECK_VERSION):" \
		     "go install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION))"; \
	fi

clean:
	rm -rf tools/bin
