package quit

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/quittree/quit/internal/core"
	"github.com/quittree/quit/internal/wal"
)

// Typed snapshot errors, re-exported from the core layer. Every snapshot
// failure matches ErrBadSnapshot via errors.Is; ErrCorruptSnapshot
// (checksum/framing/header damage) and ErrTruncatedSnapshot (stream ends
// early — a torn write) identify the specific mode.
var (
	ErrBadSnapshot       = core.ErrBadSnapshot
	ErrCorruptSnapshot   error = core.ErrCorruptSnapshot
	ErrTruncatedSnapshot error = core.ErrTruncatedSnapshot
)

// Salvage reads as much of a damaged snapshot as possible: it rebuilds a
// working tree from the longest checksum-valid prefix of the stream and
// returns it together with the error that stopped the read (nil when the
// stream is intact, in which case Salvage behaves exactly like Load). The
// returned tree is nil only when not even the snapshot header could be
// recovered. Both bare Save streams and DurableTree's on-disk checkpoint
// files are accepted: a leading checkpoint preamble is skipped without
// being verified, since salvage must work when the preamble itself is the
// damaged part.
func Salvage[K Integer, V any](r io.Reader, opts Options) (*Tree[K, V], error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	var cfg core.Config
	if opts != (Options{}) {
		cfg = opts.config()
	}
	br := bufio.NewReader(r)
	if pre, err := br.Peek(len(wal.PreambleMagic)); err == nil && string(pre) == wal.PreambleMagic {
		if _, err := br.Discard(wal.PreambleSize); err != nil {
			return nil, fmt.Errorf("%v: %w", err, ErrTruncatedSnapshot) //quitlint:allow errwrap mapping cause onto the typed sentinel
		}
	}
	t, err := core.Salvage[K, V](br, cfg)
	if t == nil {
		return nil, err
	}
	return &Tree[K, V]{t: t}, err
}

// SyncPolicy selects when a DurableTree's write-ahead log reaches stable
// storage; see the constants for the guarantee each policy buys.
type SyncPolicy uint8

const (
	// SyncAlways fsyncs the log on every write: a mutating call that
	// returns nil is durable. The safest and slowest policy.
	SyncAlways SyncPolicy = iota
	// SyncInterval group-commits: writes are acknowledged from memory and
	// the batch is fsynced once per interval. A crash loses at most the
	// last interval of acknowledged writes; recovery still yields a clean
	// prefix of them.
	SyncInterval
	// SyncNever leaves flushing to the OS entirely. Fastest; a crash may
	// lose any suffix of acknowledged writes.
	SyncNever
)

func (p SyncPolicy) wal() wal.SyncPolicy {
	switch p {
	case SyncInterval:
		return wal.SyncInterval
	case SyncNever:
		return wal.SyncNever
	default:
		return wal.SyncAlways
	}
}

// String names the policy.
func (p SyncPolicy) String() string { return p.wal().String() }

// File is a writable file as the durability layer needs it: sequential
// writes, an fsync barrier, and close.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS abstracts the filesystem operations behind a DurableTree, so tests
// can substitute a fault-injecting in-memory implementation (see
// internal/faultio). The zero value of DurableOptions selects the real
// operating-system filesystem.
type FS interface {
	MkdirAll(dir string) error
	// ReadDir returns the base names of the entries in dir.
	ReadDir(dir string) ([]string, error)
	// Create truncates-or-creates a file for writing.
	Create(name string) (File, error)
	Open(name string) (io.ReadCloser, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	Remove(name string) error
	// SyncDir fsyncs a directory, making renames and creations durable.
	SyncDir(dir string) error
}

// DefaultFS returns the production operating-system FS — the
// implementation a nil DurableOptions.FS selects. Exposed so composing
// layers (internal/shard's manifest, tools) can perform their own
// durable file operations through the same abstraction they pass down.
func DefaultFS() FS { return osFS{} }

// osFS is the production FS.
type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names, nil
}

func (osFS) Create(name string) (File, error)        { return os.Create(name) }
func (osFS) Open(name string) (io.ReadCloser, error) { return os.Open(name) }
func (osFS) Rename(o, n string) error                { return os.Rename(o, n) }
func (osFS) Remove(name string) error                { return os.Remove(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// CheckpointPolicy bounds recovery work by checkpointing automatically:
// once the live write-ahead log (everything a reopen would replay)
// exceeds MaxWALBytes bytes or MaxRecords records, a checkpoint compacts
// it into a snapshot and deletes the covered segments. A zero field
// disables that bound; the zero policy disables auto-checkpointing
// entirely.
//
// The trigger runs off the commit path: it reads atomic counters after a
// successful commit and runs the checkpoint on its own goroutine, so it
// never blocks the pipelined group commit. At most one automatic
// checkpoint is in flight at a time.
type CheckpointPolicy struct {
	MaxWALBytes int64
	MaxRecords  int
}

// RetryPolicy bounds the write-ahead log's in-place recovery from
// transient I/O failures: a failed write or fsync is retried up to
// MaxRetries times with exponential backoff before the log gives up and
// poisons itself. Errors the classifier calls non-transient (disk full,
// read-only filesystem, a closed descriptor) skip the retries entirely.
type RetryPolicy struct {
	// MaxRetries is the number of retries after the first attempt. The
	// zero value selects the default (3); negative disables retrying.
	MaxRetries int
	// Backoff is the delay before the first retry (default 1ms); it
	// doubles per retry up to MaxBackoff (default 100ms).
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Sleep waits between attempts; nil selects time.Sleep. Tests inject
	// a recording sleeper so retries take no wall-clock time.
	Sleep func(time.Duration)
	// Transient reports whether an I/O error is worth retrying; nil
	// selects the default classifier (everything except ENOSPC, EDQUOT,
	// EROFS, EBADF and closed files).
	Transient func(error) bool
}

// DurableOptions configures Open.
type DurableOptions struct {
	// Options configures the in-memory tree exactly as for New.
	Options
	// Sync selects the write-ahead log's sync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncInterval is the group-commit window for SyncInterval (default
	// 10ms).
	SyncInterval time.Duration
	// WALBufBytes caps the group-commit buffer (default 256KiB).
	WALBufBytes int
	// SegmentBytes is the WAL segment rotation threshold: once the
	// current segment holds at least this many bytes, the commit leader
	// syncs it and continues in a fresh segment file. Zero selects the
	// default (64MiB); negative disables rotation.
	SegmentBytes int64
	// Checkpoint enables automatic checkpoints; the zero value leaves
	// checkpointing manual.
	Checkpoint CheckpointPolicy
	// Retry bounds the WAL's transient-fault retry loop; the zero value
	// selects the defaults documented on RetryPolicy.
	Retry RetryPolicy
	// FS substitutes the filesystem; nil selects the real one. Used by
	// the fault-injection tests.
	FS FS
}

func (o DurableOptions) walConfig() wal.Config {
	return wal.Config{
		Sync:         o.Sync.wal(),
		Interval:     o.SyncInterval,
		BufBytes:     o.WALBufBytes,
		SegmentBytes: o.SegmentBytes,
		Retry: wal.RetryPolicy{
			MaxRetries: o.Retry.MaxRetries,
			Backoff:    o.Retry.Backoff,
			MaxBackoff: o.Retry.MaxBackoff,
			Sleep:      o.Retry.Sleep,
			Transient:  o.Retry.Transient,
		},
	}
}

// RecoveryInfo reports what Open found on disk and how recovery went.
// Degraded-but-successful recoveries (an unreadable newest snapshot with a
// readable predecessor, a torn log tail) are recorded here rather than
// failing the open: the recovered tree is always a consistent prefix of
// the acknowledged history.
type RecoveryInfo struct {
	// Snapshot is the base name of the snapshot generation that loaded,
	// or "" when the tree started empty.
	Snapshot string
	// SnapshotSeq is the log sequence number the snapshot covers.
	SnapshotSeq uint64
	// SkippedSnapshots records newer snapshot generations that failed to
	// load (typed snapshot errors, newest first). Non-empty means the
	// tree fell back to an older generation.
	SkippedSnapshots []error
	// SegmentsReplayed and RecordsReplayed count the log replay.
	SegmentsReplayed int
	RecordsReplayed  int
	// WALBytesReplayed is the total valid record prefix, in bytes,
	// found across the replayed segments — the live log volume the
	// checkpoint policy starts from.
	WALBytesReplayed int64
	// WALTail is nil when the log ended cleanly at a record boundary;
	// otherwise it wraps wal.ErrTornRecord or wal.ErrCorruptRecord and
	// explains where replay stopped. A torn tail after a crash is
	// expected, not an error: everything before it was applied.
	WALTail error
}

// DurableTree is a Tree backed by a crash-safe persistence layer: every
// mutation is appended to a checksummed write-ahead log before it is
// applied in memory, and Checkpoint compacts the log into an atomically
// renamed, checksummed snapshot. Open recovers the newest loadable
// snapshot plus the valid log prefix after a crash.
//
// Mutating and reading methods are safe for concurrent use (mutations are
// serialized internally to keep log order and apply order identical).
// Checkpoint may run concurrently with reads but blocks writers.
type DurableTree[K Integer, V any] struct {
	mu   sync.RWMutex
	dir  string
	fs   FS
	opts DurableOptions

	t    *Tree[K, V]
	log  *wal.Log[K, V]
	rec  RecoveryInfo
	open bool

	// Disk-full degradation (DESIGN.md §8): guarded by mu. While
	// readOnly is set, writes fail with ErrReadOnly (wrapping roCause)
	// and reads keep serving; Recover clears it.
	readOnly bool
	roCause  error

	// Durability accounting. baseWALBytes / baseWALRecords carry the
	// live WAL volume inherited from disk at Open and are reset by each
	// checkpoint; the cum* counters accumulate totals from rotated-out
	// logs. All atomic so maybeAutoCheckpoint and DurabilityStats read
	// them off the commit path, without the log mutex.
	baseWALBytes   atomic.Int64
	baseWALRecords atomic.Int64
	cumRotations   atomic.Uint64
	cumRotFailed   atomic.Uint64
	cumRetries     atomic.Uint64
	cumRetriesOK   atomic.Uint64
	cumFsyncs      atomic.Uint64
	checkpoints    atomic.Uint64
	autoCheckpts   atomic.Uint64
	walReclaimed   atomic.Uint64
	cpRunning      atomic.Bool
	cpWG           sync.WaitGroup
}

const (
	snapPrefix = "snap-"
	snapSuffix = ".quit"
	walPrefix  = "wal-"
	walSuffix  = ".log"
	snapTmp    = "snap.tmp"
)

func snapName(seq uint64) string { return fmt.Sprintf("%s%020d%s", snapPrefix, seq, snapSuffix) }
func walName(seq uint64) string  { return fmt.Sprintf("%s%020d%s", walPrefix, seq, walSuffix) }

// parseSeq extracts the sequence number from a snap-/wal- file name, or
// returns false for names that are not part of the layout.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	digits := name[len(prefix) : len(name)-len(suffix)]
	if len(digits) == 0 {
		return 0, false
	}
	seq, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// Open recovers (or initializes) a durable tree rooted at dir: it loads
// the newest snapshot generation that passes its checksums, replays the
// valid prefix of the write-ahead log on top, and starts a fresh log
// segment for new writes. See (*DurableTree).Recovery for what was found.
//
// Open fails only when the directory is unusable or every recovery source
// is unreadable in a way that cannot be degraded around; torn log tails
// and corrupt newest snapshots recover to the best consistent prefix
// instead of failing.
func Open[K Integer, V any](dir string, opts DurableOptions) (*DurableTree[K, V], error) {
	if err := opts.Options.Validate(); err != nil {
		return nil, err
	}
	fs := opts.FS
	if fs == nil {
		fs = osFS{}
	}
	if err := fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("quit: creating durable dir: %w", err)
	}
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("quit: listing durable dir: %w", err)
	}

	var snapSeqs, walSeqs []uint64
	for _, name := range names {
		if seq, ok := parseSeq(name, snapPrefix, snapSuffix); ok {
			snapSeqs = append(snapSeqs, seq)
		}
		if seq, ok := parseSeq(name, walPrefix, walSuffix); ok {
			walSeqs = append(walSeqs, seq)
		}
	}
	sort.Slice(snapSeqs, func(i, j int) bool { return snapSeqs[i] > snapSeqs[j] }) // newest first
	sort.Slice(walSeqs, func(i, j int) bool { return walSeqs[i] < walSeqs[j] })   // oldest first

	d := &DurableTree[K, V]{dir: dir, fs: fs, opts: opts}

	// Newest loadable snapshot wins; unreadable generations are recorded
	// and skipped — graceful degradation, not all-or-nothing.
	for _, seq := range snapSeqs {
		name := snapName(seq)
		t, snapSeq, err := loadSnapshotFile[K, V](fs, filepath.Join(dir, name), opts.Options)
		if err != nil {
			d.rec.SkippedSnapshots = append(d.rec.SkippedSnapshots, fmt.Errorf("%s: %w", name, err))
			continue
		}
		d.t, d.rec.Snapshot, d.rec.SnapshotSeq = t, name, snapSeq
		break
	}
	if d.t == nil {
		if len(d.rec.SkippedSnapshots) > 0 {
			// Every generation failed: refuse to silently restart empty.
			return nil, fmt.Errorf("quit: no loadable snapshot in %s (newest: %w)", dir, d.rec.SkippedSnapshots[0])
		}
		d.t = New[K, V](opts.Options)
	}

	// Replay the log segments in order on top of the snapshot. Records
	// already covered by the snapshot are skipped by sequence number.
	lastApplied := d.rec.SnapshotSeq
	apply := func(r wal.Record[K, V]) error {
		switch r.Op {
		case wal.OpInsert:
			d.t.Put(r.Key, r.Val)
		case wal.OpDelete:
			d.t.Delete(r.Key)
		case wal.OpClear:
			d.t.Clear()
		case wal.OpBatch:
			// PutBatch sorts deterministically (stable, last-write-wins on
			// duplicates), so replaying the original batch reproduces the
			// pre-crash tree contents exactly.
			d.t.PutBatch(r.Keys, r.Vals)
		}
		return nil
	}
	for i := 0; i < len(walSeqs); i++ {
		name := walName(walSeqs[i])
		if walSeqs[i] > lastApplied+1 &&
			(i+1 < len(walSeqs) || len(d.rec.SkippedSnapshots) == 0) {
			// A segment starting beyond the replayed prefix means acked
			// history in between is missing — deleted or damaged — and
			// replay cannot continue past the break. Refuse to open as a
			// silently shortened tree. The one sanctioned case: the
			// *last* segment after a snapshot fallback, where the newest
			// generation was skipped as damaged and the surviving log
			// begins where that generation's checkpoint rotated — replay
			// flags the break in WALTail and recovery visibly degrades
			// to the older prefix.
			return nil, fmt.Errorf("quit: log segment %s starts at sequence %d but replay reached %d: %w",
				name, walSeqs[i], lastApplied, ErrWALGap)
		}
		f, err := fs.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("quit: opening log segment %s: %w", name, err)
		}
		stats, err := wal.Replay(f, lastApplied, apply)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("quit: replaying %s: %w", name, err)
		}
		lastApplied = stats.LastSeq
		d.rec.SegmentsReplayed++
		d.rec.RecordsReplayed += stats.Applied
		d.rec.WALBytesReplayed += stats.Bytes
		if stats.Tail != nil {
			d.rec.WALTail = fmt.Errorf("%s: %w", name, stats.Tail)
			// A later segment starting exactly at the break means a
			// previous recovery already resumed there; keep replaying.
			if i+1 < len(walSeqs) && walSeqs[i+1] == lastApplied+1 {
				continue
			}
			// A torn or corrupt tail is tolerable only in the newest
			// segment: rotation syncs a segment before abandoning it,
			// so mid-chain damage means the later segments hold acked
			// history this replay cannot reach.
			if i+1 < len(walSeqs) {
				return nil, fmt.Errorf("quit: replaying %s: %v: %w", name, stats.Tail, ErrWALGap) //quitlint:allow errwrap mapping cause onto the typed sentinel
			}
			break
		}
	}
	d.baseWALBytes.Store(d.rec.WALBytesReplayed)
	d.baseWALRecords.Store(int64(d.rec.RecordsReplayed))

	// New writes go to a fresh segment continuing the sequence. (If the
	// name exists, it is a segment we applied nothing from — empty or
	// torn at its first record — and truncating it is sound.)
	wf, err := d.openSegment(lastApplied + 1)
	if err != nil {
		return nil, fmt.Errorf("quit: creating log segment: %w", err)
	}
	d.log = d.newLog(wf, lastApplied)
	d.open = true
	return d, nil
}

// openSegment creates — and makes durable in the directory — the file
// for the write-ahead-log segment whose first record will carry
// firstSeq. It serves Open, checkpoint rotation, and the log's own
// size-triggered rotation (which calls it from the commit leader, off
// d.mu; it touches only immutable fields).
func (d *DurableTree[K, V]) openSegment(firstSeq uint64) (wal.File, error) {
	f, err := d.fs.Create(filepath.Join(d.dir, walName(firstSeq)))
	if err != nil {
		return nil, err
	}
	if err := d.fs.SyncDir(d.dir); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// newLog builds a log over wf whose next record is lastSeq+1, wired to
// rotate segments through openSegment.
func (d *DurableTree[K, V]) newLog(wf wal.File, lastSeq uint64) *wal.Log[K, V] {
	cfg := d.opts.walConfig()
	cfg.OpenSegment = d.openSegment
	return wal.New[K, V](wf, lastSeq, cfg)
}

// loadSnapshotFile reads one checkpoint file: preamble, then snapshot.
func loadSnapshotFile[K Integer, V any](fs FS, path string, opts Options) (*Tree[K, V], uint64, error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	seq, err := wal.ReadPreamble(f)
	if err != nil {
		// A damaged preamble is a damaged snapshot file; keep the whole
		// failure family matchable via errors.Is(err, ErrBadSnapshot).
		return nil, 0, fmt.Errorf("%v: %w", err, ErrCorruptSnapshot) //quitlint:allow errwrap mapping cause onto the typed sentinel
	}
	t, err := Load[K, V](f, opts)
	if err != nil {
		return nil, 0, err
	}
	return t, seq, nil
}

// Recovery reports what Open found and recovered.
func (d *DurableTree[K, V]) Recovery() RecoveryInfo { return d.rec }

// ErrClosed is returned by operations on a closed DurableTree.
var ErrClosed = errors.New("quit: durable tree is closed")

// ErrReadOnly marks the disk-full degraded mode: the write-ahead log hit
// ENOSPC (or EDQUOT), so writes fail cleanly with this error while Get,
// Range, Scan and the other readers keep serving the in-memory tree.
// Free space and call Recover (or reopen) to accept writes again. Every
// error returned while degraded matches via errors.Is and wraps the
// original disk-full cause.
var ErrReadOnly = errors.New("quit: durable tree is read-only after a disk-full failure")

// ErrWALGap reports unreachable acknowledged history: a log segment is
// damaged or missing in the middle of the segment chain, with later
// segments whose records cannot be applied past the break. Opening would
// silently drop acknowledged writes, so Open refuses instead.
var ErrWALGap = errors.New("quit: gap in write-ahead log segment chain")

// isDiskFull classifies the failures that flip the tree read-only
// instead of merely poisoning the log: out of space or out of quota.
func isDiskFull(err error) bool {
	return errors.Is(err, syscall.ENOSPC) || errors.Is(err, syscall.EDQUOT)
}

// degradeLocked maps a log failure onto the degradation contract: a
// disk-full failure flips the tree into typed read-only mode — writes
// fail with ErrReadOnly while reads keep serving — instead of the
// generic poisoned-log error. Other failures pass through unchanged.
// Called with d.mu held (read-only state is guarded by it).
func (d *DurableTree[K, V]) degradeLocked(err error) error {
	if err == nil {
		return nil
	}
	if isDiskFull(err) {
		if !d.readOnly {
			d.readOnly = true
			d.roCause = err
		}
		return fmt.Errorf("%w: %w", ErrReadOnly, err)
	}
	return err
}

// readOnlyErrLocked is the fast-path rejection for writes while the tree
// is degraded; d.mu must be held.
func (d *DurableTree[K, V]) readOnlyErrLocked() error {
	return fmt.Errorf("%w: %w", ErrReadOnly, d.roCause)
}

// ReadOnly reports whether the tree is in the disk-full degraded mode.
func (d *DurableTree[K, V]) ReadOnly() bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.readOnly
}

// append logs one record and applies fn to the in-memory tree. The write
// lock keeps log order and apply order identical.
func (d *DurableTree[K, V]) append(op wal.Op, key K, val V, fn func()) error {
	if !d.open {
		return ErrClosed
	}
	if d.readOnly {
		return d.readOnlyErrLocked()
	}
	if _, err := d.log.Append(op, key, val); err != nil {
		return d.degradeLocked(err)
	}
	fn()
	d.maybeAutoCheckpoint(d.log)
	return nil
}

// Put inserts key with value val, overwriting and returning any previous
// value. A nil error acknowledges the write under the open sync policy's
// durability guarantee.
func (d *DurableTree[K, V]) Put(key K, val V) (prev V, existed bool, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	err = d.append(wal.OpInsert, key, val, func() { prev, existed = d.t.Put(key, val) })
	return prev, existed, err
}

// Insert is Put discarding the previous value.
func (d *DurableTree[K, V]) Insert(key K, val V) error {
	_, _, err := d.Put(key, val)
	return err
}

// PutBatch inserts a group of entries as one durable unit: the whole
// batch is framed as a single write-ahead-log record (one CRC, one
// sequence number and — under SyncAlways — one fsync, instead of one per
// key) and then applied to the in-memory tree through the batched write
// path. Recovery is all-or-nothing: a crash mid-write replays either the
// entire batch or none of it, never a partial one.
//
// Semantics match Tree.PutBatch: equivalent to Put per pair in order,
// duplicates resolve last-write-wins with later occurrences reporting
// Existed. An empty batch is a durable no-op. A length mismatch returns
// an error without logging or applying anything.
func (d *DurableTree[K, V]) PutBatch(keys []K, vals []V) ([]PutResult, error) {
	return d.batch(keys, vals, false, core.IngestOptions{})
}

// PutBatchParallel is PutBatch with the in-memory application fanned out
// over opts.Workers goroutines (see Tree.PutBatchParallel); the batch is
// still one durable unit framed as a single log record.
func (d *DurableTree[K, V]) PutBatchParallel(keys []K, vals []V, opts IngestOptions) ([]PutResult, error) {
	return d.batch(keys, vals, true, opts)
}

// batch logs and applies one insertion group, pipelining the WAL commit.
// The record is framed (sequenced + checksummed) under d.mu before the
// tree is touched but committed only after application and after d.mu is
// released, so the WAL's disk write overlaps in-memory work — the next
// batch's framing and application, and under SyncInterval whole batches —
// instead of serializing ahead of it. The acked-prefix contract is
// unchanged: this call acknowledges only after Commit, and replay still
// sees batches in sequence order. On a commit failure the in-memory tree
// may be ahead of the durable prefix, but the poisoned log refuses all
// further acknowledgements, so nothing acked is ever lost; reopen to
// resume from the log. Commit runs against the log the record was framed
// into even if a concurrent Checkpoint rotates d.log meanwhile — the
// rotation's final sync makes the record durable and Commit recognizes
// that before consulting the closed log's sticky error.
func (d *DurableTree[K, V]) batch(keys []K, vals []V, parallel bool, opts IngestOptions) ([]PutResult, error) {
	d.mu.Lock()
	if !d.open {
		d.mu.Unlock()
		return nil, ErrClosed
	}
	if d.readOnly {
		err := d.readOnlyErrLocked()
		d.mu.Unlock()
		return nil, err
	}
	if len(keys) != len(vals) {
		d.mu.Unlock()
		return nil, fmt.Errorf("quit: batch of %d keys with %d values", len(keys), len(vals))
	}
	if len(keys) == 0 {
		d.mu.Unlock()
		// Empty batch: nothing framed, nothing applied — nil ack is a no-op.
		//quitlint:allow walorder empty batch acks without committing; nothing was framed
		return nil, nil
	}
	// Log the original (pre-sort) batch; replay re-sorts deterministically.
	log := d.log
	seq, err := log.AppendBatchStart(keys, vals)
	if err != nil {
		err = d.degradeLocked(err)
		d.mu.Unlock()
		return nil, err
	}
	var res []PutResult
	if parallel {
		res = d.t.PutBatchParallel(keys, vals, opts)
	} else {
		res = d.t.PutBatch(keys, vals)
	}
	d.mu.Unlock()
	if err := log.Commit(seq); err != nil {
		d.mu.Lock()
		err = d.degradeLocked(err)
		d.mu.Unlock()
		return nil, err
	}
	d.maybeAutoCheckpoint(log)
	return res, nil
}

// ApplySorted is PutBatch for input already in non-decreasing key order.
// Ordering is verified before anything is logged, so an ErrNotSorted
// batch leaves both the log and the tree untouched.
func (d *DurableTree[K, V]) ApplySorted(keys []K, vals []V) ([]PutResult, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.open {
		return nil, ErrClosed
	}
	if d.readOnly {
		return nil, d.readOnlyErrLocked()
	}
	if len(keys) != len(vals) {
		return nil, fmt.Errorf("quit: batch of %d keys with %d values", len(keys), len(vals))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			return nil, ErrNotSorted
		}
	}
	if len(keys) == 0 {
		//quitlint:allow walorder empty batch acks without committing; nothing was framed
		return nil, nil
	}
	// Pipelined like PutBatch (see batch): frame, apply, then commit
	// outside d.mu. Ordering was verified above, before anything was
	// framed.
	log := d.log
	seq, err := log.AppendBatchStart(keys, vals)
	if err != nil {
		return nil, d.degradeLocked(err)
	}
	res, err := d.t.ApplySorted(keys, vals)
	if err != nil {
		// Unreachable: ordering and lengths were verified above. Surface
		// it anyway rather than silently diverging from the log.
		return nil, err
	}
	d.mu.Unlock()
	err = log.Commit(seq)
	d.mu.Lock() // re-lock for the deferred unlock
	if err != nil {
		return nil, d.degradeLocked(err)
	}
	d.maybeAutoCheckpoint(log)
	return res, nil
}

// Delete removes key, returning its value and whether it was present.
func (d *DurableTree[K, V]) Delete(key K) (val V, existed bool, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var zero V
	err = d.append(wal.OpDelete, key, zero, func() { val, existed = d.t.Delete(key) })
	return val, existed, err
}

// Clear removes every entry, durably: an OpClear record is logged before
// the in-memory tree is rebuilt, so a crash at any point recovers either
// the pre-Clear contents or an empty, structurally valid tree — never a
// partial one. The underlying Tree.Clear swaps in a fresh in-memory tree
// (dropping nothing durably by itself); the logged record is what makes
// the emptiness survive recovery.
func (d *DurableTree[K, V]) Clear() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	var zeroK K
	var zeroV V
	return d.append(wal.OpClear, zeroK, zeroV, func() { d.t.Clear() })
}

// Sync forces the write-ahead log's buffered records to stable storage,
// regardless of policy (under SyncNever it flushes to the OS without an
// fsync, which is that policy's strongest statement).
func (d *DurableTree[K, V]) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.open {
		return ErrClosed
	}
	if d.readOnly {
		return d.readOnlyErrLocked()
	}
	return d.degradeLocked(d.log.Sync())
}

// Checkpoint writes a checksummed snapshot of the current tree, installs
// it with an atomic rename, rotates the log, and removes the now-covered
// older snapshots and log segments. After a successful checkpoint,
// recovery cost is proportional to the writes since this call.
//
// On failure the durable state is untouched: the previous snapshot and
// the full log remain authoritative.
func (d *DurableTree[K, V]) Checkpoint() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.open {
		return ErrClosed
	}
	// Everything the snapshot will contain must be on disk first, so a
	// crash mid-checkpoint still recovers from the old snapshot + log.
	if err := d.log.Sync(); err != nil {
		return d.degradeLocked(err)
	}
	return d.checkpointLocked()
}

// checkpointLocked writes, installs and swaps to a new snapshot of the
// in-memory tree at the log's current last sequence number, rotating the
// log and deleting covered generations. d.mu must be held. It does not
// sync the log first: Checkpoint syncs (acked records must be durable
// before being superseded), while Recover deliberately skips the sync —
// its log is poisoned and the snapshot of the in-memory tree, which
// holds every acknowledged write, replaces the log wholesale.
func (d *DurableTree[K, V]) checkpointLocked() error {
	seq := d.log.LastSeq()

	tmp := filepath.Join(d.dir, snapTmp)
	f, err := d.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("quit: creating snapshot: %w", err)
	}
	if err := d.writeSnapshot(f, seq); err != nil {
		f.Close()
		d.fs.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		d.fs.Remove(tmp)
		return fmt.Errorf("quit: syncing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		d.fs.Remove(tmp)
		return fmt.Errorf("quit: closing snapshot: %w", err)
	}
	final := filepath.Join(d.dir, snapName(seq))
	if err := d.fs.Rename(tmp, final); err != nil {
		d.fs.Remove(tmp)
		return fmt.Errorf("quit: installing snapshot: %w", err)
	}
	if err := d.fs.SyncDir(d.dir); err != nil {
		return fmt.Errorf("quit: syncing durable dir: %w", err)
	}

	// Rotate the log: new writes land in a fresh segment above seq.
	wf, err := d.openSegment(seq + 1)
	if err != nil {
		return fmt.Errorf("quit: rotating log: %w", err)
	}
	old := d.log
	d.log = d.newLog(wf, seq)
	// Roll the retiring log's counters into the cumulative totals and
	// credit the reclaimed volume: everything it framed plus whatever
	// the previous generation left on disk is deleted below.
	oc := old.Counters()
	d.cumRotations.Add(oc.Rotations)
	d.cumRotFailed.Add(oc.RotationFailures)
	d.cumRetries.Add(oc.RetriesAttempted)
	d.cumRetriesOK.Add(oc.RetriesSucceeded)
	d.cumFsyncs.Add(oc.Fsyncs)
	d.walReclaimed.Add(uint64(d.baseWALBytes.Load()) + oc.Bytes)
	d.baseWALBytes.Store(0)
	d.baseWALRecords.Store(0)
	//quitlint:allow walorder rotated-out segment is already synced; its Close error carries no durable state
	old.Close()

	// Best-effort cleanup of fully-covered generations: the snapshot at
	// seq plus the fresh segment are now authoritative, so older
	// snapshots and every other log segment are garbage. Failures leave
	// stale-but-harmless files that the next checkpoint retries.
	if names, err := d.fs.ReadDir(d.dir); err == nil {
		for _, name := range names {
			if s, ok := parseSeq(name, snapPrefix, snapSuffix); ok && s < seq {
				d.fs.Remove(filepath.Join(d.dir, name))
			}
			if s, ok := parseSeq(name, walPrefix, walSuffix); ok && s != seq+1 {
				d.fs.Remove(filepath.Join(d.dir, name))
			}
		}
	}
	d.rec.Snapshot, d.rec.SnapshotSeq = snapName(seq), seq
	d.checkpoints.Add(1)
	return nil
}

// Recover re-arms a tree whose write-ahead log has failed — a disk-full
// degradation (ErrReadOnly) or any other poisoned-log state — without
// closing it. It writes a fresh checkpoint of the in-memory tree, which
// holds every acknowledged write, swaps in a new log, and clears the
// read-only mode; on success the tree accepts writes again. A healthy
// tree is a no-op. Recover needs enough free space for the snapshot, so
// after ENOSPC it succeeds only once space has actually been freed.
//
// The failed log is not synced first (it would only fail again): the
// snapshot speaks for the in-memory state. Every record at or below the
// log's last framed sequence is either applied in memory — acknowledged
// writes always are — or was never acknowledged, so replacing the log
// with a snapshot at that sequence loses nothing that was promised.
func (d *DurableTree[K, V]) Recover() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.open {
		return ErrClosed
	}
	if !d.readOnly && d.log.Err() == nil {
		return nil
	}
	if err := d.checkpointLocked(); err != nil {
		return err
	}
	d.readOnly = false
	d.roCause = nil
	return nil
}

// maybeAutoCheckpoint starts a background checkpoint once the live WAL
// crosses the CheckpointPolicy bounds. It never blocks the caller: the
// trigger reads atomic counters, and the checkpoint itself runs on its
// own goroutine, serialized with writers by d.mu exactly like a manual
// Checkpoint. log is the log the caller just committed to, passed
// explicitly because the caller no longer holds d.mu.
func (d *DurableTree[K, V]) maybeAutoCheckpoint(log *wal.Log[K, V]) {
	pol := d.opts.Checkpoint
	if pol.MaxWALBytes <= 0 && pol.MaxRecords <= 0 {
		return
	}
	c := log.Counters()
	liveBytes := d.baseWALBytes.Load() + int64(c.Bytes)
	liveRecords := d.baseWALRecords.Load() + int64(c.Records)
	if (pol.MaxWALBytes <= 0 || liveBytes < pol.MaxWALBytes) &&
		(pol.MaxRecords <= 0 || liveRecords < int64(pol.MaxRecords)) {
		return
	}
	if log.Err() != nil {
		return // a failed log cannot be synced into a snapshot
	}
	if !d.cpRunning.CompareAndSwap(false, true) {
		return // one automatic checkpoint in flight is enough
	}
	d.cpWG.Add(1)
	go func() {
		defer d.cpWG.Done()
		defer d.cpRunning.Store(false)
		if d.Checkpoint() == nil {
			d.autoCheckpts.Add(1)
		}
	}()
}

// DurabilityStats reports the durability layer's self-healing counters,
// cumulative since Open. Live* describe the current write-ahead log —
// the volume a reopen would replay and the auto-checkpoint trigger
// compares against CheckpointPolicy.
type DurabilityStats struct {
	SegmentsRotated   uint64 // WAL segments rotated away full and durable
	RotationFailures  uint64 // abandoned rotations (the log stayed in its segment)
	RetriesAttempted  uint64 // write/fsync attempts beyond the first
	RetriesSucceeded  uint64 // operations rescued by a retry
	Fsyncs            uint64 // successful fsync barriers issued by the WAL
	Checkpoints       uint64 // checkpoints installed (manual + automatic + Recover)
	AutoCheckpoints   uint64 // checkpoints fired by CheckpointPolicy
	WALBytesReclaimed uint64 // log bytes deleted by checkpoint truncation
	WALLiveBytes      uint64 // live log volume a reopen would replay
	WALLiveRecords    uint64 // live log records a reopen would replay
	ReadOnly          bool   // disk-full degraded mode (see ErrReadOnly)
}

// DurabilityStats snapshots the durability counters. The snapshot is
// advisory: counters are read without stopping writers, so values may
// trail in-flight commits by a moment.
func (d *DurableTree[K, V]) DurabilityStats() DurabilityStats {
	d.mu.RLock()
	log, ro := d.log, d.readOnly
	d.mu.RUnlock()
	c := log.Counters()
	return DurabilityStats{
		SegmentsRotated:   d.cumRotations.Load() + c.Rotations,
		RotationFailures:  d.cumRotFailed.Load() + c.RotationFailures,
		RetriesAttempted:  d.cumRetries.Load() + c.RetriesAttempted,
		RetriesSucceeded:  d.cumRetriesOK.Load() + c.RetriesSucceeded,
		Fsyncs:            d.cumFsyncs.Load() + c.Fsyncs,
		Checkpoints:       d.checkpoints.Load(),
		AutoCheckpoints:   d.autoCheckpts.Load(),
		WALBytesReclaimed: d.walReclaimed.Load(),
		WALLiveBytes:      uint64(d.baseWALBytes.Load()) + c.Bytes,
		WALLiveRecords:    uint64(d.baseWALRecords.Load()) + c.Records,
		ReadOnly:          ro,
	}
}

// writeSnapshot emits preamble + snapshot stream.
func (d *DurableTree[K, V]) writeSnapshot(w io.Writer, seq uint64) error {
	if err := wal.WritePreamble(w, seq); err != nil {
		return err
	}
	return d.t.Save(w)
}

// Close syncs outstanding log records and releases the log file. The tree
// is unusable afterwards; reopen with Open.
func (d *DurableTree[K, V]) Close() error {
	d.mu.Lock()
	if !d.open {
		d.mu.Unlock()
		return ErrClosed
	}
	d.open = false
	err := d.log.Close()
	d.mu.Unlock()
	// Drain any in-flight automatic checkpoint (it observes !open and
	// bails, or was already finishing) so the directory is quiescent —
	// and reopenable — once Close returns.
	d.cpWG.Wait()
	return err
}

// Tree returns the in-memory tree for read-only use (running queries not
// wrapped below). Mutating it directly bypasses the log and forfeits
// crash safety.
func (d *DurableTree[K, V]) Tree() *Tree[K, V] { return d.t }

// Get returns the value stored under key.
func (d *DurableTree[K, V]) Get(key K) (V, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.t.Get(key)
}

// Contains reports whether key is present.
func (d *DurableTree[K, V]) Contains(key K) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.t.Contains(key)
}

// Len returns the number of live entries.
func (d *DurableTree[K, V]) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.t.Len()
}

// Range visits entries with start <= key < end in ascending order until fn
// returns false; it returns the number of entries visited.
func (d *DurableTree[K, V]) Range(start, end K, fn func(K, V) bool) int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.t.Range(start, end, fn)
}

// Scan visits all entries in ascending order until fn returns false.
func (d *DurableTree[K, V]) Scan(fn func(K, V) bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	d.t.Scan(fn)
}

// Min returns the smallest key and its value (ok=false when empty).
func (d *DurableTree[K, V]) Min() (K, V, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.t.Min()
}

// Max returns the largest key and its value (ok=false when empty).
func (d *DurableTree[K, V]) Max() (K, V, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.t.Max()
}

// Stats snapshots the in-memory tree's counters and shape.
func (d *DurableTree[K, V]) Stats() Stats {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.t.Stats()
}

// Validate checks the in-memory tree's structural invariants.
func (d *DurableTree[K, V]) Validate() error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.t.Validate()
}
