package quit

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/quittree/quit/internal/core"
	"github.com/quittree/quit/internal/wal"
)

// Typed snapshot errors, re-exported from the core layer. Every snapshot
// failure matches ErrBadSnapshot via errors.Is; ErrCorruptSnapshot
// (checksum/framing/header damage) and ErrTruncatedSnapshot (stream ends
// early — a torn write) identify the specific mode.
var (
	ErrBadSnapshot       = core.ErrBadSnapshot
	ErrCorruptSnapshot   error = core.ErrCorruptSnapshot
	ErrTruncatedSnapshot error = core.ErrTruncatedSnapshot
)

// Salvage reads as much of a damaged snapshot as possible: it rebuilds a
// working tree from the longest checksum-valid prefix of the stream and
// returns it together with the error that stopped the read (nil when the
// stream is intact, in which case Salvage behaves exactly like Load). The
// returned tree is nil only when not even the snapshot header could be
// recovered. Both bare Save streams and DurableTree's on-disk checkpoint
// files are accepted: a leading checkpoint preamble is skipped without
// being verified, since salvage must work when the preamble itself is the
// damaged part.
func Salvage[K Integer, V any](r io.Reader, opts Options) (*Tree[K, V], error) {
	var cfg core.Config
	if opts != (Options{}) {
		cfg = opts.config()
	}
	br := bufio.NewReader(r)
	if pre, err := br.Peek(len(wal.PreambleMagic)); err == nil && string(pre) == wal.PreambleMagic {
		if _, err := br.Discard(wal.PreambleSize); err != nil {
			return nil, fmt.Errorf("%v: %w", err, ErrTruncatedSnapshot) //quitlint:allow errwrap mapping cause onto the typed sentinel
		}
	}
	t, err := core.Salvage[K, V](br, cfg)
	if t == nil {
		return nil, err
	}
	return &Tree[K, V]{t: t}, err
}

// SyncPolicy selects when a DurableTree's write-ahead log reaches stable
// storage; see the constants for the guarantee each policy buys.
type SyncPolicy uint8

const (
	// SyncAlways fsyncs the log on every write: a mutating call that
	// returns nil is durable. The safest and slowest policy.
	SyncAlways SyncPolicy = iota
	// SyncInterval group-commits: writes are acknowledged from memory and
	// the batch is fsynced once per interval. A crash loses at most the
	// last interval of acknowledged writes; recovery still yields a clean
	// prefix of them.
	SyncInterval
	// SyncNever leaves flushing to the OS entirely. Fastest; a crash may
	// lose any suffix of acknowledged writes.
	SyncNever
)

func (p SyncPolicy) wal() wal.SyncPolicy {
	switch p {
	case SyncInterval:
		return wal.SyncInterval
	case SyncNever:
		return wal.SyncNever
	default:
		return wal.SyncAlways
	}
}

// String names the policy.
func (p SyncPolicy) String() string { return p.wal().String() }

// File is a writable file as the durability layer needs it: sequential
// writes, an fsync barrier, and close.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS abstracts the filesystem operations behind a DurableTree, so tests
// can substitute a fault-injecting in-memory implementation (see
// internal/faultio). The zero value of DurableOptions selects the real
// operating-system filesystem.
type FS interface {
	MkdirAll(dir string) error
	// ReadDir returns the base names of the entries in dir.
	ReadDir(dir string) ([]string, error)
	// Create truncates-or-creates a file for writing.
	Create(name string) (File, error)
	Open(name string) (io.ReadCloser, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	Remove(name string) error
	// SyncDir fsyncs a directory, making renames and creations durable.
	SyncDir(dir string) error
}

// osFS is the production FS.
type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names, nil
}

func (osFS) Create(name string) (File, error)        { return os.Create(name) }
func (osFS) Open(name string) (io.ReadCloser, error) { return os.Open(name) }
func (osFS) Rename(o, n string) error                { return os.Rename(o, n) }
func (osFS) Remove(name string) error                { return os.Remove(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// DurableOptions configures Open.
type DurableOptions struct {
	// Options configures the in-memory tree exactly as for New.
	Options
	// Sync selects the write-ahead log's sync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncInterval is the group-commit window for SyncInterval (default
	// 10ms).
	SyncInterval time.Duration
	// WALBufBytes caps the group-commit buffer (default 256KiB).
	WALBufBytes int
	// FS substitutes the filesystem; nil selects the real one. Used by
	// the fault-injection tests.
	FS FS
}

func (o DurableOptions) walConfig() wal.Config {
	return wal.Config{Sync: o.Sync.wal(), Interval: o.SyncInterval, BufBytes: o.WALBufBytes}
}

// RecoveryInfo reports what Open found on disk and how recovery went.
// Degraded-but-successful recoveries (an unreadable newest snapshot with a
// readable predecessor, a torn log tail) are recorded here rather than
// failing the open: the recovered tree is always a consistent prefix of
// the acknowledged history.
type RecoveryInfo struct {
	// Snapshot is the base name of the snapshot generation that loaded,
	// or "" when the tree started empty.
	Snapshot string
	// SnapshotSeq is the log sequence number the snapshot covers.
	SnapshotSeq uint64
	// SkippedSnapshots records newer snapshot generations that failed to
	// load (typed snapshot errors, newest first). Non-empty means the
	// tree fell back to an older generation.
	SkippedSnapshots []error
	// SegmentsReplayed and RecordsReplayed count the log replay.
	SegmentsReplayed int
	RecordsReplayed  int
	// WALTail is nil when the log ended cleanly at a record boundary;
	// otherwise it wraps wal.ErrTornRecord or wal.ErrCorruptRecord and
	// explains where replay stopped. A torn tail after a crash is
	// expected, not an error: everything before it was applied.
	WALTail error
}

// DurableTree is a Tree backed by a crash-safe persistence layer: every
// mutation is appended to a checksummed write-ahead log before it is
// applied in memory, and Checkpoint compacts the log into an atomically
// renamed, checksummed snapshot. Open recovers the newest loadable
// snapshot plus the valid log prefix after a crash.
//
// Mutating and reading methods are safe for concurrent use (mutations are
// serialized internally to keep log order and apply order identical).
// Checkpoint may run concurrently with reads but blocks writers.
type DurableTree[K Integer, V any] struct {
	mu   sync.RWMutex
	dir  string
	fs   FS
	opts DurableOptions

	t    *Tree[K, V]
	log  *wal.Log[K, V]
	rec  RecoveryInfo
	open bool
}

const (
	snapPrefix = "snap-"
	snapSuffix = ".quit"
	walPrefix  = "wal-"
	walSuffix  = ".log"
	snapTmp    = "snap.tmp"
)

func snapName(seq uint64) string { return fmt.Sprintf("%s%020d%s", snapPrefix, seq, snapSuffix) }
func walName(seq uint64) string  { return fmt.Sprintf("%s%020d%s", walPrefix, seq, walSuffix) }

// parseSeq extracts the sequence number from a snap-/wal- file name, or
// returns false for names that are not part of the layout.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	digits := name[len(prefix) : len(name)-len(suffix)]
	if len(digits) == 0 {
		return 0, false
	}
	seq, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// Open recovers (or initializes) a durable tree rooted at dir: it loads
// the newest snapshot generation that passes its checksums, replays the
// valid prefix of the write-ahead log on top, and starts a fresh log
// segment for new writes. See (*DurableTree).Recovery for what was found.
//
// Open fails only when the directory is unusable or every recovery source
// is unreadable in a way that cannot be degraded around; torn log tails
// and corrupt newest snapshots recover to the best consistent prefix
// instead of failing.
func Open[K Integer, V any](dir string, opts DurableOptions) (*DurableTree[K, V], error) {
	fs := opts.FS
	if fs == nil {
		fs = osFS{}
	}
	if err := fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("quit: creating durable dir: %w", err)
	}
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("quit: listing durable dir: %w", err)
	}

	var snapSeqs, walSeqs []uint64
	for _, name := range names {
		if seq, ok := parseSeq(name, snapPrefix, snapSuffix); ok {
			snapSeqs = append(snapSeqs, seq)
		}
		if seq, ok := parseSeq(name, walPrefix, walSuffix); ok {
			walSeqs = append(walSeqs, seq)
		}
	}
	sort.Slice(snapSeqs, func(i, j int) bool { return snapSeqs[i] > snapSeqs[j] }) // newest first
	sort.Slice(walSeqs, func(i, j int) bool { return walSeqs[i] < walSeqs[j] })   // oldest first

	d := &DurableTree[K, V]{dir: dir, fs: fs, opts: opts}

	// Newest loadable snapshot wins; unreadable generations are recorded
	// and skipped — graceful degradation, not all-or-nothing.
	for _, seq := range snapSeqs {
		name := snapName(seq)
		t, snapSeq, err := loadSnapshotFile[K, V](fs, filepath.Join(dir, name), opts.Options)
		if err != nil {
			d.rec.SkippedSnapshots = append(d.rec.SkippedSnapshots, fmt.Errorf("%s: %w", name, err))
			continue
		}
		d.t, d.rec.Snapshot, d.rec.SnapshotSeq = t, name, snapSeq
		break
	}
	if d.t == nil {
		if len(d.rec.SkippedSnapshots) > 0 {
			// Every generation failed: refuse to silently restart empty.
			return nil, fmt.Errorf("quit: no loadable snapshot in %s (newest: %w)", dir, d.rec.SkippedSnapshots[0])
		}
		d.t = New[K, V](opts.Options)
	}

	// Replay the log segments in order on top of the snapshot. Records
	// already covered by the snapshot are skipped by sequence number.
	lastApplied := d.rec.SnapshotSeq
	apply := func(r wal.Record[K, V]) error {
		switch r.Op {
		case wal.OpInsert:
			d.t.Put(r.Key, r.Val)
		case wal.OpDelete:
			d.t.Delete(r.Key)
		case wal.OpClear:
			d.t.Clear()
		case wal.OpBatch:
			// PutBatch sorts deterministically (stable, last-write-wins on
			// duplicates), so replaying the original batch reproduces the
			// pre-crash tree contents exactly.
			d.t.PutBatch(r.Keys, r.Vals)
		}
		return nil
	}
	for i := 0; i < len(walSeqs); i++ {
		name := walName(walSeqs[i])
		f, err := fs.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("quit: opening log segment %s: %w", name, err)
		}
		stats, err := wal.Replay(f, lastApplied, apply)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("quit: replaying %s: %w", name, err)
		}
		lastApplied = stats.LastSeq
		d.rec.SegmentsReplayed++
		d.rec.RecordsReplayed += stats.Applied
		if stats.Tail != nil {
			d.rec.WALTail = fmt.Errorf("%s: %w", name, stats.Tail)
			// A later segment starting exactly at the break means a
			// previous recovery already resumed there; keep replaying.
			// Anything else is past the tear and cannot be trusted.
			if i+1 < len(walSeqs) && walSeqs[i+1] == lastApplied+1 {
				continue
			}
			break
		}
	}

	// New writes go to a fresh segment continuing the sequence. (If the
	// name exists, it is a segment we applied nothing from — empty or
	// torn at its first record — and truncating it is sound.)
	segName := filepath.Join(dir, walName(lastApplied+1))
	wf, err := fs.Create(segName)
	if err != nil {
		return nil, fmt.Errorf("quit: creating log segment: %w", err)
	}
	if err := fs.SyncDir(dir); err != nil {
		wf.Close()
		return nil, fmt.Errorf("quit: syncing durable dir: %w", err)
	}
	d.log = wal.New[K, V](wf, lastApplied, opts.walConfig())
	d.open = true
	return d, nil
}

// loadSnapshotFile reads one checkpoint file: preamble, then snapshot.
func loadSnapshotFile[K Integer, V any](fs FS, path string, opts Options) (*Tree[K, V], uint64, error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	seq, err := wal.ReadPreamble(f)
	if err != nil {
		// A damaged preamble is a damaged snapshot file; keep the whole
		// failure family matchable via errors.Is(err, ErrBadSnapshot).
		return nil, 0, fmt.Errorf("%v: %w", err, ErrCorruptSnapshot) //quitlint:allow errwrap mapping cause onto the typed sentinel
	}
	t, err := Load[K, V](f, opts)
	if err != nil {
		return nil, 0, err
	}
	return t, seq, nil
}

// Recovery reports what Open found and recovered.
func (d *DurableTree[K, V]) Recovery() RecoveryInfo { return d.rec }

// ErrClosed is returned by operations on a closed DurableTree.
var ErrClosed = errors.New("quit: durable tree is closed")

// append logs one record and applies fn to the in-memory tree. The write
// lock keeps log order and apply order identical.
func (d *DurableTree[K, V]) append(op wal.Op, key K, val V, fn func()) error {
	if !d.open {
		return ErrClosed
	}
	if _, err := d.log.Append(op, key, val); err != nil {
		return err
	}
	fn()
	return nil
}

// Put inserts key with value val, overwriting and returning any previous
// value. A nil error acknowledges the write under the open sync policy's
// durability guarantee.
func (d *DurableTree[K, V]) Put(key K, val V) (prev V, existed bool, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	err = d.append(wal.OpInsert, key, val, func() { prev, existed = d.t.Put(key, val) })
	return prev, existed, err
}

// Insert is Put discarding the previous value.
func (d *DurableTree[K, V]) Insert(key K, val V) error {
	_, _, err := d.Put(key, val)
	return err
}

// PutBatch inserts a group of entries as one durable unit: the whole
// batch is framed as a single write-ahead-log record (one CRC, one
// sequence number and — under SyncAlways — one fsync, instead of one per
// key) and then applied to the in-memory tree through the batched write
// path. Recovery is all-or-nothing: a crash mid-write replays either the
// entire batch or none of it, never a partial one.
//
// Semantics match Tree.PutBatch: equivalent to Put per pair in order,
// duplicates resolve last-write-wins with later occurrences reporting
// Existed. An empty batch is a durable no-op. A length mismatch returns
// an error without logging or applying anything.
func (d *DurableTree[K, V]) PutBatch(keys []K, vals []V) ([]PutResult, error) {
	return d.batch(keys, vals, false, core.IngestOptions{})
}

// PutBatchParallel is PutBatch with the in-memory application fanned out
// over opts.Workers goroutines (see Tree.PutBatchParallel); the batch is
// still one durable unit framed as a single log record.
func (d *DurableTree[K, V]) PutBatchParallel(keys []K, vals []V, opts IngestOptions) ([]PutResult, error) {
	return d.batch(keys, vals, true, opts)
}

// batch logs and applies one insertion group, pipelining the WAL commit.
// The record is framed (sequenced + checksummed) under d.mu before the
// tree is touched but committed only after application and after d.mu is
// released, so the WAL's disk write overlaps in-memory work — the next
// batch's framing and application, and under SyncInterval whole batches —
// instead of serializing ahead of it. The acked-prefix contract is
// unchanged: this call acknowledges only after Commit, and replay still
// sees batches in sequence order. On a commit failure the in-memory tree
// may be ahead of the durable prefix, but the poisoned log refuses all
// further acknowledgements, so nothing acked is ever lost; reopen to
// resume from the log. Commit runs against the log the record was framed
// into even if a concurrent Checkpoint rotates d.log meanwhile — the
// rotation's final sync makes the record durable and Commit recognizes
// that before consulting the closed log's sticky error.
func (d *DurableTree[K, V]) batch(keys []K, vals []V, parallel bool, opts IngestOptions) ([]PutResult, error) {
	d.mu.Lock()
	if !d.open {
		d.mu.Unlock()
		return nil, ErrClosed
	}
	if len(keys) != len(vals) {
		d.mu.Unlock()
		return nil, fmt.Errorf("quit: batch of %d keys with %d values", len(keys), len(vals))
	}
	if len(keys) == 0 {
		d.mu.Unlock()
		// Empty batch: nothing framed, nothing applied — nil ack is a no-op.
		//quitlint:allow walorder empty batch acks without committing; nothing was framed
		return nil, nil
	}
	// Log the original (pre-sort) batch; replay re-sorts deterministically.
	log := d.log
	seq, err := log.AppendBatchStart(keys, vals)
	if err != nil {
		d.mu.Unlock()
		return nil, err
	}
	var res []PutResult
	if parallel {
		res = d.t.PutBatchParallel(keys, vals, opts)
	} else {
		res = d.t.PutBatch(keys, vals)
	}
	d.mu.Unlock()
	if err := log.Commit(seq); err != nil {
		return nil, err
	}
	return res, nil
}

// ApplySorted is PutBatch for input already in non-decreasing key order.
// Ordering is verified before anything is logged, so an ErrNotSorted
// batch leaves both the log and the tree untouched.
func (d *DurableTree[K, V]) ApplySorted(keys []K, vals []V) ([]PutResult, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.open {
		return nil, ErrClosed
	}
	if len(keys) != len(vals) {
		return nil, fmt.Errorf("quit: batch of %d keys with %d values", len(keys), len(vals))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] < keys[i-1] {
			return nil, ErrNotSorted
		}
	}
	if len(keys) == 0 {
		//quitlint:allow walorder empty batch acks without committing; nothing was framed
		return nil, nil
	}
	// Pipelined like PutBatch (see batch): frame, apply, then commit
	// outside d.mu. Ordering was verified above, before anything was
	// framed.
	log := d.log
	seq, err := log.AppendBatchStart(keys, vals)
	if err != nil {
		return nil, err
	}
	res, err := d.t.ApplySorted(keys, vals)
	if err != nil {
		// Unreachable: ordering and lengths were verified above. Surface
		// it anyway rather than silently diverging from the log.
		return nil, err
	}
	d.mu.Unlock()
	err = log.Commit(seq)
	d.mu.Lock() // re-lock for the deferred unlock
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Delete removes key, returning its value and whether it was present.
func (d *DurableTree[K, V]) Delete(key K) (val V, existed bool, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var zero V
	err = d.append(wal.OpDelete, key, zero, func() { val, existed = d.t.Delete(key) })
	return val, existed, err
}

// Clear removes every entry, durably: an OpClear record is logged before
// the in-memory tree is rebuilt, so a crash at any point recovers either
// the pre-Clear contents or an empty, structurally valid tree — never a
// partial one. The underlying Tree.Clear swaps in a fresh in-memory tree
// (dropping nothing durably by itself); the logged record is what makes
// the emptiness survive recovery.
func (d *DurableTree[K, V]) Clear() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	var zeroK K
	var zeroV V
	return d.append(wal.OpClear, zeroK, zeroV, func() { d.t.Clear() })
}

// Sync forces the write-ahead log's buffered records to stable storage,
// regardless of policy (under SyncNever it flushes to the OS without an
// fsync, which is that policy's strongest statement).
func (d *DurableTree[K, V]) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.open {
		return ErrClosed
	}
	return d.log.Sync()
}

// Checkpoint writes a checksummed snapshot of the current tree, installs
// it with an atomic rename, rotates the log, and removes the now-covered
// older snapshots and log segments. After a successful checkpoint,
// recovery cost is proportional to the writes since this call.
//
// On failure the durable state is untouched: the previous snapshot and
// the full log remain authoritative.
func (d *DurableTree[K, V]) Checkpoint() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.open {
		return ErrClosed
	}
	// Everything the snapshot will contain must be on disk first, so a
	// crash mid-checkpoint still recovers from the old snapshot + log.
	if err := d.log.Sync(); err != nil {
		return err
	}
	seq := d.log.LastSeq()

	tmp := filepath.Join(d.dir, snapTmp)
	f, err := d.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("quit: creating snapshot: %w", err)
	}
	if err := d.writeSnapshot(f, seq); err != nil {
		f.Close()
		d.fs.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		d.fs.Remove(tmp)
		return fmt.Errorf("quit: syncing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		d.fs.Remove(tmp)
		return fmt.Errorf("quit: closing snapshot: %w", err)
	}
	final := filepath.Join(d.dir, snapName(seq))
	if err := d.fs.Rename(tmp, final); err != nil {
		d.fs.Remove(tmp)
		return fmt.Errorf("quit: installing snapshot: %w", err)
	}
	if err := d.fs.SyncDir(d.dir); err != nil {
		return fmt.Errorf("quit: syncing durable dir: %w", err)
	}

	// Rotate the log: new writes land in a fresh segment above seq.
	segName := filepath.Join(d.dir, walName(seq+1))
	wf, err := d.fs.Create(segName)
	if err != nil {
		return fmt.Errorf("quit: rotating log: %w", err)
	}
	if err := d.fs.SyncDir(d.dir); err != nil {
		wf.Close()
		return fmt.Errorf("quit: syncing durable dir: %w", err)
	}
	old := d.log
	d.log = wal.New[K, V](wf, seq, d.opts.walConfig())
	//quitlint:allow walorder rotated-out segment is already synced; its Close error carries no durable state
	old.Close()

	// Best-effort cleanup of fully-covered generations: the snapshot at
	// seq plus the fresh segment are now authoritative, so older
	// snapshots and every other log segment are garbage. Failures leave
	// stale-but-harmless files that the next checkpoint retries.
	if names, err := d.fs.ReadDir(d.dir); err == nil {
		for _, name := range names {
			if s, ok := parseSeq(name, snapPrefix, snapSuffix); ok && s < seq {
				d.fs.Remove(filepath.Join(d.dir, name))
			}
			if s, ok := parseSeq(name, walPrefix, walSuffix); ok && s != seq+1 {
				d.fs.Remove(filepath.Join(d.dir, name))
			}
		}
	}
	d.rec.Snapshot, d.rec.SnapshotSeq = snapName(seq), seq
	return nil
}

// writeSnapshot emits preamble + snapshot stream.
func (d *DurableTree[K, V]) writeSnapshot(w io.Writer, seq uint64) error {
	if err := wal.WritePreamble(w, seq); err != nil {
		return err
	}
	return d.t.Save(w)
}

// Close syncs outstanding log records and releases the log file. The tree
// is unusable afterwards; reopen with Open.
func (d *DurableTree[K, V]) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.open {
		return ErrClosed
	}
	d.open = false
	return d.log.Close()
}

// Tree returns the in-memory tree for read-only use (running queries not
// wrapped below). Mutating it directly bypasses the log and forfeits
// crash safety.
func (d *DurableTree[K, V]) Tree() *Tree[K, V] { return d.t }

// Get returns the value stored under key.
func (d *DurableTree[K, V]) Get(key K) (V, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.t.Get(key)
}

// Contains reports whether key is present.
func (d *DurableTree[K, V]) Contains(key K) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.t.Contains(key)
}

// Len returns the number of live entries.
func (d *DurableTree[K, V]) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.t.Len()
}

// Range visits entries with start <= key < end in ascending order until fn
// returns false; it returns the number of entries visited.
func (d *DurableTree[K, V]) Range(start, end K, fn func(K, V) bool) int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.t.Range(start, end, fn)
}

// Scan visits all entries in ascending order until fn returns false.
func (d *DurableTree[K, V]) Scan(fn func(K, V) bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	d.t.Scan(fn)
}

// Min returns the smallest key and its value (ok=false when empty).
func (d *DurableTree[K, V]) Min() (K, V, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.t.Min()
}

// Max returns the largest key and its value (ok=false when empty).
func (d *DurableTree[K, V]) Max() (K, V, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.t.Max()
}

// Stats snapshots the in-memory tree's counters and shape.
func (d *DurableTree[K, V]) Stats() Stats {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.t.Stats()
}

// Validate checks the in-memory tree's structural invariants.
func (d *DurableTree[K, V]) Validate() error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.t.Validate()
}
