package quit

import (
	"io"

	"github.com/quittree/quit/internal/core"
)

// Floor returns the largest entry with key <= target (ok=false if none).
// Safe for concurrent use on synchronized trees.
func (tr *Tree[K, V]) Floor(target K) (K, V, bool) { return tr.t.Floor(target) }

// Ceiling returns the smallest entry with key >= target (ok=false if none).
// Safe for concurrent use on synchronized trees.
func (tr *Tree[K, V]) Ceiling(target K) (K, V, bool) { return tr.t.Ceiling(target) }

// Iterator is a bidirectional cursor over entries in key order: the cursor
// sits between entries, Next yields the entry after it and Prev the entry
// before it. It must not be used while the tree is being modified; for
// latched callback-style iteration use Range or Scan.
type Iterator[K Integer, V any] struct {
	it *core.Iterator[K, V]
}

// Iter returns an iterator positioned before the first entry.
func (tr *Tree[K, V]) Iter() *Iterator[K, V] {
	return &Iterator[K, V]{it: tr.t.Iter()}
}

// Seek returns an iterator positioned just before the first entry with
// key >= target (so Prev yields the last entry with key < target).
func (tr *Tree[K, V]) Seek(target K) *Iterator[K, V] {
	return &Iterator[K, V]{it: tr.t.Seek(target)}
}

// SeekLast returns an iterator positioned after the last entry, for
// backward iteration with Prev.
func (tr *Tree[K, V]) SeekLast() *Iterator[K, V] {
	return &Iterator[K, V]{it: tr.t.SeekLast()}
}

// Next advances to the next entry, returning false when exhausted.
func (it *Iterator[K, V]) Next() bool { return it.it.Next() }

// Prev steps backward to the previous entry, returning false at the front.
func (it *Iterator[K, V]) Prev() bool { return it.it.Prev() }

// Key returns the current entry's key; valid after a true Next.
func (it *Iterator[K, V]) Key() K { return it.it.Key() }

// Value returns the current entry's value; valid after a true Next.
func (it *Iterator[K, V]) Value() V { return it.it.Value() }

// Valid reports whether the iterator points at an entry.
func (it *Iterator[K, V]) Valid() bool { return it.it.Valid() }

// Save writes a snapshot of the tree to w (gob-encoded; V must be gob-
// encodable). Requires external synchronization.
func (tr *Tree[K, V]) Save(w io.Writer) error { return tr.t.Save(w) }

// Load restores a tree from a snapshot written by Save. Pass a zero
// Options to keep the snapshot's configuration; a non-zero Options
// overrides the design, synchronization and (if set) node geometry. The
// loaded tree is compact (leaves ~90% packed) regardless of the occupancy
// it was saved with.
func Load[K Integer, V any](r io.Reader, opts Options) (*Tree[K, V], error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	var cfg core.Config
	if opts != (Options{}) {
		cfg = opts.config()
	}
	t, err := core.Load[K, V](r, cfg)
	if err != nil {
		return nil, err
	}
	return &Tree[K, V]{t: t}, nil
}
