package quit_test

import (
	"errors"
	"testing"

	quit "github.com/quittree/quit"
	"github.com/quittree/quit/internal/faultio"
)

func TestOptionsValidateGapFraction(t *testing.T) {
	valid := []float64{0, 0.05, 0.1, 0.5, 0.999, quit.PackedLeaves}
	for _, f := range valid {
		if err := (quit.Options{GapFraction: f}).Validate(); err != nil {
			t.Errorf("Validate(GapFraction=%v) = %v, want nil", f, err)
		}
	}
	invalid := []float64{-0.1, -2, 1, 1.5}
	for _, f := range invalid {
		err := (quit.Options{GapFraction: f}).Validate()
		if !errors.Is(err, quit.ErrInvalidOptions) {
			t.Errorf("Validate(GapFraction=%v) = %v, want ErrInvalidOptions", f, err)
		}
	}
}

func TestNewPanicsOnInvalidOptions(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(GapFraction=1.2) did not panic")
		}
	}()
	quit.New[int64, string](quit.Options{GapFraction: 1.2})
}

func TestPackedLeavesSentinel(t *testing.T) {
	// The sentinel must build a working, fully packed tree.
	tr := quit.New[int64, int](quit.Options{GapFraction: quit.PackedLeaves, LeafCapacity: 16, InternalFanout: 8})
	for i := int64(0); i < 1000; i++ {
		tr.Put(i, int(i))
	}
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRejectsInvalidOptions(t *testing.T) {
	fs := faultio.NewMemFS()
	opts := quit.DurableOptions{
		Options: quit.Options{GapFraction: -0.5},
		FS:      fs,
	}
	if _, err := quit.Open[int64, string]("/x", opts); !errors.Is(err, quit.ErrInvalidOptions) {
		t.Fatalf("Open = %v, want ErrInvalidOptions", err)
	}
}

// TestDurabilityStatsFsyncs pins the new fsync accounting: under
// SyncAlways every acknowledged write implies at least one fsync
// barrier, and the counter survives checkpoint log-swaps (it is
// cumulative, not per-segment).
func TestDurabilityStatsFsyncs(t *testing.T) {
	fs := faultio.NewMemFS()
	d, err := quit.Open[int64, string]("/fsync", quit.DurableOptions{
		Options: quit.Options{LeafCapacity: 16, InternalFanout: 8},
		Sync:    quit.SyncAlways,
		FS:      fs,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	const n = 50
	for i := int64(0); i < n; i++ {
		if err := d.Insert(i, "v"); err != nil {
			t.Fatal(err)
		}
	}
	got := d.DurabilityStats().Fsyncs
	if got < n {
		t.Fatalf("Fsyncs = %d after %d SyncAlways writes, want >= %d", got, n, n)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := int64(n); i < 2*n; i++ {
		if err := d.Insert(i, "v"); err != nil {
			t.Fatal(err)
		}
	}
	after := d.DurabilityStats().Fsyncs
	if after < got+n {
		t.Fatalf("Fsyncs = %d after checkpoint + %d more writes, want >= %d (counter reset?)", after, n, got+n)
	}
}
