package quit_test

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	quit "github.com/quittree/quit"
	"github.com/quittree/quit/internal/bods"
	"github.com/quittree/quit/internal/shard"
)

// shardedStore opens a b.TempDir-backed sharded store with syncs counted.
func shardedStore(b *testing.B, shards int, sample []int64) (*shard.Tree[int64, int64], *atomic.Int64) {
	b.Helper()
	var syncs atomic.Int64
	st, err := shard.Open[int64, int64](b.TempDir(), quit.ShardedOptions{
		DurableOptions: quit.DurableOptions{
			Sync: quit.SyncAlways,
			FS:   countingFS{osBenchFS{}, &syncs},
		},
		Shards: shards,
	}, sample)
	if err != nil {
		b.Fatal(err)
	}
	return st, &syncs
}

// BenchmarkShardedIngest prices the routed PutBatch across shard counts
// on the near-sorted stream: one classify pass, disjoint per-shard
// sub-batches, one WAL record + fsync per active shard per batch.
// shards=1 is the no-routing baseline.
func BenchmarkShardedIngest(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			keys := benchKeys(b, 0.05, 1.0)
			b.StopTimer()
			vals := make([]int64, len(keys))
			copy(vals, keys)
			sample := keys
			if len(sample) > 4096 {
				sample = sample[:4096]
			}
			st, syncs := shardedStore(b, shards, sample)
			syncs.Store(0)
			const bs = 8192
			b.StartTimer()
			for i := 0; i < len(keys); i += bs {
				end := min(i+bs, len(keys))
				if _, err := st.PutBatch(keys[i:end], vals[i:end]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(syncs.Load())/float64(b.N), "syncs/op")
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkCoalescedPut is the serving write path: 64 concurrent clients
// per-request Put (baseline, the WAL's own group commit still applies)
// vs the same clients through the server-side coalescer. syncs/op is the
// amortization the coalescer exists for.
func BenchmarkCoalescedPut(b *testing.B) {
	const clients = 64
	run := func(b *testing.B, put func(k int64) error) {
		b.StopTimer()
		var wg sync.WaitGroup
		per := b.N / clients
		if per == 0 {
			per = 1
		}
		b.StartTimer()
		for g := 0; g < clients; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					if err := put(int64(g)<<32 | int64(i)); err != nil {
						b.Error(err)
						return
					}
				}
			}(g)
		}
		wg.Wait()
		b.StopTimer()
	}
	b.Run("per-request", func(b *testing.B) {
		var syncs atomic.Int64
		d, err := quit.Open[int64, int64](b.TempDir(), quit.DurableOptions{
			Sync: quit.SyncAlways,
			FS:   countingFS{osBenchFS{}, &syncs},
		})
		if err != nil {
			b.Fatal(err)
		}
		syncs.Store(0)
		run(b, func(k int64) error { return d.Insert(k, k) })
		b.ReportMetric(float64(syncs.Load())/float64(b.N), "syncs/op")
		if err := d.Close(); err != nil {
			b.Fatal(err)
		}
	})
	b.Run("coalesced", func(b *testing.B) {
		st, syncs := shardedStore(b, 1, nil)
		co := shard.NewCoalescer(st, 256, 50*time.Microsecond, nil)
		syncs.Store(0)
		run(b, func(k int64) error { return co.Put(k, k) })
		b.ReportMetric(float64(syncs.Load())/float64(b.N), "syncs/op")
		co.Close()
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkHotKeyCacheGet prices the 95/5 read-mostly hot-key workload:
// direct sharded-tree Get vs read-through cache.
func BenchmarkHotKeyCacheGet(b *testing.B) {
	const n = 500_000
	setup := func(b *testing.B) (*shard.Tree[int64, int64], []int64) {
		b.Helper()
		b.StopTimer()
		sample := make([]int64, 1024)
		for i := range sample {
			sample[i] = int64(i) * n / int64(len(sample))
		}
		st, err := shard.Open[int64, int64](b.TempDir(), quit.ShardedOptions{
			DurableOptions: quit.DurableOptions{Sync: quit.SyncNever},
			Shards:         4,
		}, sample)
		if err != nil {
			b.Fatal(err)
		}
		keys := bods.Generate(bods.Spec{N: n, K: 0, L: 0, Seed: 42})
		if _, err := st.PutBatch(keys, keys); err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(42))
		hot := n / 100
		ops := make([]int64, b.N)
		for i := range ops {
			if rng.Intn(100) < 95 {
				ops[i] = int64(rng.Intn(hot))
			} else {
				ops[i] = int64(rng.Intn(n))
			}
		}
		b.StartTimer()
		return st, ops
	}
	b.Run("direct", func(b *testing.B) {
		st, ops := setup(b)
		defer st.Close()
		for i := 0; i < b.N; i++ {
			st.Get(ops[i])
		}
	})
	b.Run("cached", func(b *testing.B) {
		st, ops := setup(b)
		defer st.Close()
		b.StopTimer()
		cache := shard.NewCache[int64, int64](16384, 16)
		b.StartTimer()
		for i := 0; i < b.N; i++ {
			cache.GetOrLoad(ops[i], st.Get)
		}
		b.StopTimer()
		cc := cache.Counters()
		b.ReportMetric(float64(cc.CacheHits)/float64(cc.CacheHits+cc.CacheMisses), "hit-rate")
		b.StartTimer()
	})
}
