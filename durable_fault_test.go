// Crash-safety property tests: a scripted workload runs against the
// fault-injection filesystem, which records every byte and barrier as an
// ordered schedule. We then simulate a crash at EVERY point of that
// schedule — event boundaries, torn mid-write cuts, and the pessimal
// synced-bytes-only variant — reconstruct the disk image the crash leaves,
// and recover from it. The durability contract under SyncAlways:
//
//  1. Open never panics and never fails on a pure crash image (torn
//     in-flight snapshots hide behind the atomic rename; torn log tails
//     recover to the prefix before the tear).
//  2. The recovered tree passes Validate.
//  3. The recovered contents equal the model state after exactly j
//     workload steps, for some j — a consistent prefix, never a gappy or
//     reordered history.
//  4. j covers at least every step acknowledged before the crash point
//     (SyncAlways means acked == durable).
//
// Bit-flip corruption relaxes only clause 1: recovery may instead fail
// with a typed error, but must never panic or hand back a wrong tree.
package quit_test

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"github.com/quittree/quit"
	"github.com/quittree/quit/internal/faultio"
)

const faultDir = "db"

func faultOpts(fs *faultio.MemFS) quit.DurableOptions {
	return quit.DurableOptions{
		Options: quit.Options{LeafCapacity: 16, InternalFanout: 8},
		Sync:    quit.SyncAlways,
		FS:      fs,
	}
}

// crashWorkload runs the scripted mutation sequence, returning the model
// state after each step (models[j] = contents after j steps, models[0] =
// empty) and, per step, the schedule length at the moment the step was
// acknowledged.
func crashWorkload(t *testing.T, fs *faultio.MemFS) (models []map[int64]string, ackEvent []int) {
	t.Helper()
	return crashWorkloadOpts(t, fs, faultOpts(fs))
}

// crashWorkloadOpts is crashWorkload under caller-chosen durable options,
// so the rotation and auto-checkpoint matrices reuse the same scripted
// history.
func crashWorkloadOpts(t *testing.T, fs *faultio.MemFS, opts quit.DurableOptions) (models []map[int64]string, ackEvent []int) {
	t.Helper()
	d, err := quit.Open[int64, string](faultDir, opts)
	if err != nil {
		t.Fatal(err)
	}
	model := map[int64]string{}
	models = append(models, map[int64]string{}) // state after 0 steps
	snapshotModel := func() {
		m := make(map[int64]string, len(model))
		for k, v := range model {
			m[k] = v
		}
		models = append(models, m)
	}
	key := int64(0)
	for i := 0; i < 130; i++ {
		switch {
		case i == 55:
			if err := d.Clear(); err != nil {
				t.Fatalf("step %d clear: %v", i, err)
			}
			model = map[int64]string{}
		case i%13 == 4:
			// A batched write is ONE workload step: its WAL record is a
			// single frame, so every crash point inside it must recover
			// all-or-nothing. The batch is deliberately messy — an
			// ascending run, an outlier, and an in-batch duplicate.
			ks := []int64{key, key + 1, key + 2, key - 25, key + 1}
			vs := make([]string, len(ks))
			for j := range ks {
				vs[j] = fmt.Sprintf("b%d.%d", i, j)
			}
			if _, err := d.PutBatch(ks, vs); err != nil {
				t.Fatalf("step %d batch: %v", i, err)
			}
			for j, k := range ks {
				model[k] = vs[j]
			}
			key += 3
		case i%9 == 7 && key > 3:
			k := key - 3
			if _, _, err := d.Delete(k); err != nil {
				t.Fatalf("step %d delete: %v", i, err)
			}
			delete(model, k)
		default:
			// Mostly-ascending keys with periodic outliers, the tree's
			// characteristic workload.
			k := key
			if i%17 == 13 {
				k = key - 40
			} else {
				key++
			}
			v := fmt.Sprintf("v%d", i)
			if err := d.Insert(k, v); err != nil {
				t.Fatalf("step %d insert: %v", i, err)
			}
			model[k] = v
		}
		snapshotModel()
		ackEvent = append(ackEvent, len(fs.Events()))
		// Two checkpoints mid-history, so crash points cover snapshot
		// writing, the rename, log rotation, and garbage collection.
		if i == 45 || i == 95 {
			if err := d.Checkpoint(); err != nil {
				t.Fatalf("checkpoint after step %d: %v", i, err)
			}
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	return models, ackEvent
}

// recoverAndCheck opens the crash image and verifies the contract clauses.
// wantOpen forces clause 1 (pure crash images must always recover).
func recoverAndCheck(t *testing.T, image map[string][]byte, models []map[int64]string, guaranteed int, label string, wantOpen bool) {
	t.Helper()
	rfs := faultio.FromImage(image)
	d, err := quit.Open[int64, string](faultDir, faultOpts(rfs))
	if err != nil {
		if wantOpen {
			t.Fatalf("%s: Open failed on a pure crash image: %v", label, err)
		}
		if !errors.Is(err, quit.ErrBadSnapshot) && !errors.Is(err, quit.ErrWALGap) {
			t.Fatalf("%s: Open error is untyped: %v", label, err)
		}
		return
	}
	defer d.Close()
	if err := d.Validate(); err != nil {
		t.Fatalf("%s: recovered tree invalid: %v", label, err)
	}
	got := treeContents(d)
	for j := guaranteed; j < len(models); j++ {
		if mapsEqual(got, models[j]) {
			return
		}
	}
	// Not a prefix at or past the guarantee: distinguish "lost acked
	// writes" from "not a prefix at all" for the failure message.
	for j := 0; j < guaranteed; j++ {
		if mapsEqual(got, models[j]) {
			t.Fatalf("%s: recovered state after %d steps, but %d were acknowledged durable", label, j, guaranteed)
		}
	}
	t.Fatalf("%s: recovered %d entries matching no model prefix (guaranteed %d)", label, len(got), guaranteed)
}

func mapsEqual(a, b map[int64]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// guaranteedAt counts the steps acknowledged before the cut.
func guaranteedAt(ackEvent []int, cut int) int {
	g := 0
	for _, e := range ackEvent {
		if e <= cut {
			g++
		}
	}
	return g
}

// TestCrashRecoveryAtEveryPoint is the exhaustive crash matrix: one
// recovery per schedule boundary, in write-ordered and synced-only
// variants, plus torn mid-write cuts for every write event.
func TestCrashRecoveryAtEveryPoint(t *testing.T) {
	fs := faultio.NewMemFS()
	models, ackEvent := crashWorkload(t, fs)
	events := fs.Events()
	t.Logf("schedule: %d events, %d steps", len(events), len(ackEvent))

	for cut := 0; cut <= len(events); cut++ {
		g := guaranteedAt(ackEvent, cut)
		recoverAndCheck(t, fs.ImageAt(faultio.Cut{Event: cut}), models, g,
			fmt.Sprintf("cut=%d", cut), true)
		recoverAndCheck(t, fs.ImageAt(faultio.Cut{Event: cut, SyncedOnly: true}), models, g,
			fmt.Sprintf("cut=%d/synced-only", cut), true)
		if cut < len(events) && events[cut].Kind == faultio.EvWrite {
			n := len(events[cut].Data)
			for _, mid := range []int{1, n / 2, n - 1} {
				if mid <= 0 || mid >= n {
					continue
				}
				recoverAndCheck(t, fs.ImageAt(faultio.Cut{Event: cut, MidBytes: mid}), models, g,
					fmt.Sprintf("cut=%d/mid=%d", cut, mid), true)
			}
		}
	}
}

// TestCrashRecoveryBitFlips sweeps single-bit corruption across every byte
// region of the final on-disk state: recovery must either produce a valid
// model prefix or fail with a typed error — never panic, never return a
// tree that matches no prefix.
func TestCrashRecoveryBitFlips(t *testing.T) {
	fs := faultio.NewMemFS()
	models, _ := crashWorkload(t, fs)
	image := fs.ImageAt(faultio.Cut{Event: len(fs.Events())})

	for name, data := range image {
		stride := len(data) / 97
		if stride < 1 {
			stride = 1
		}
		for off := 0; off < len(data); off += stride {
			flipped := map[string][]byte{}
			for n, d := range image {
				flipped[n] = d
			}
			flipped[name] = faultio.FlipBit(data, off, uint(off%8))
			recoverAndCheck(t, flipped, models, 0,
				fmt.Sprintf("flip %s@%d", name, off), false)
		}
	}
}

// TestCrashRecoveryGappedSnapshot pins the dense-on-disk / gapped-in-memory
// contract of the leaf layout (DESIGN.md §11) against the crash matrix. The
// workload lays down an even-key base and then interleaves shuffled odd
// keys, so by the mid-history checkpoint most leaves hold live entries
// interleaved with gap slots whose neighbor-key copies must NOT leak into
// the snapshot: Save walks live slots only, and Load rebuilds the leaves
// regapped (BulkAppend at the snapshot fill with the configured gap
// fraction). A crash at any schedule point — while the gapped tree streams
// out, around the rename, or mid-WAL-replay of gap-filling inserts into
// freshly loaded leaves — must recover a consistent model prefix that
// passes the gap invariants in Validate.
func TestCrashRecoveryGappedSnapshot(t *testing.T) {
	fs := faultio.NewMemFS()
	models, ackEvent := gappedCrashWorkload(t, fs)
	events := fs.Events()
	t.Logf("gapped schedule: %d events, %d steps", len(events), len(ackEvent))

	for cut := 0; cut <= len(events); cut++ {
		g := guaranteedAt(ackEvent, cut)
		recoverAndCheck(t, fs.ImageAt(faultio.Cut{Event: cut}), models, g,
			fmt.Sprintf("gapped/cut=%d", cut), true)
		if cut < len(events) && events[cut].Kind == faultio.EvWrite {
			if n := len(events[cut].Data); n > 1 {
				recoverAndCheck(t, fs.ImageAt(faultio.Cut{Event: cut, MidBytes: n / 2}), models, g,
					fmt.Sprintf("gapped/cut=%d/mid", cut), true)
			}
		}
	}
}

// gappedCrashWorkload builds the leaf shapes the gapped layout exists for:
// an ascending even base (dense append-path leaves), then every odd key in
// a fixed shuffled order (each one a mid-leaf gap fill or a spread split).
// The checkpoint lands after half the odds, so the snapshot is taken from a
// tree in its most gap-riddled state and the tail of the WAL replays gap
// inserts into the reloaded, regapped leaves.
func gappedCrashWorkload(t *testing.T, fs *faultio.MemFS) (models []map[int64]string, ackEvent []int) {
	t.Helper()
	d, err := quit.Open[int64, string](faultDir, faultOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	const half = 48
	model := map[int64]string{}
	models = append(models, map[int64]string{})
	step := func(k int64, v string) {
		t.Helper()
		if err := d.Insert(k, v); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
		model[k] = v
		m := make(map[int64]string, len(model))
		for kk, vv := range model {
			m[kk] = vv
		}
		models = append(models, m)
		ackEvent = append(ackEvent, len(fs.Events()))
	}
	for i := int64(0); i < half; i++ {
		step(2*i, fmt.Sprintf("e%d", i))
	}
	odds := make([]int64, half)
	for i := range odds {
		odds[i] = int64(2*i + 1)
	}
	rng := rand.New(rand.NewSource(11))
	rng.Shuffle(len(odds), func(i, j int) { odds[i], odds[j] = odds[j], odds[i] })
	for i, k := range odds {
		step(k, fmt.Sprintf("o%d", k))
		if i == len(odds)/2 {
			if err := d.Checkpoint(); err != nil {
				t.Fatalf("checkpoint: %v", err)
			}
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	return models, ackEvent
}

// TestDurableFailedSync drives the injected-fsync-failure path: the write
// is not acknowledged, the log poisons itself, and the state acknowledged
// before the failure recovers intact.
func TestDurableFailedSync(t *testing.T) {
	fs := faultio.NewMemFS()
	d, err := quit.Open[int64, string](faultDir, faultOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 30; i++ {
		if err := d.Insert(i, "ok"); err != nil {
			t.Fatal(err)
		}
	}
	fs.FailSync("wal-")
	if err := d.Insert(100, "lost"); !errors.Is(err, faultio.ErrInjected) {
		t.Fatalf("insert on failing fsync: %v", err)
	}
	// The log is poisoned: no further acknowledgments.
	if err := d.Insert(101, "also lost"); err == nil {
		t.Fatal("poisoned log acknowledged a write")
	}
	fs.ClearFaults()
	d.Close()

	d2, err := quit.Open[int64, string](faultDir, faultOpts(faultio.FromImage(fs.ImageAt(faultio.Cut{Event: len(fs.Events()), SyncedOnly: true}))))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	got := treeContents(d2)
	for i := int64(0); i < 30; i++ {
		if got[i] != "ok" {
			t.Fatalf("acked key %d lost after fsync failure", i)
		}
	}
	if _, ok := got[101]; ok {
		t.Fatal("unacknowledged write survived")
	}
}

// TestDurableCheckpointWriteFailure fails the snapshot write at a byte
// offset: Checkpoint must report the error, leave the previous durable
// state authoritative, and keep the tree usable.
func TestDurableCheckpointWriteFailure(t *testing.T) {
	fs := faultio.NewMemFS()
	d, err := quit.Open[int64, string](faultDir, faultOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 40; i++ {
		d.Insert(i, "x")
	}
	fs.FailWriteAt("snap.tmp", 25)
	if err := d.Checkpoint(); !errors.Is(err, faultio.ErrInjected) {
		t.Fatalf("checkpoint on failing disk: %v", err)
	}
	fs.ClearFaults()
	// The log is untouched by the failed checkpoint: writes continue.
	if err := d.Insert(100, "after"); err != nil {
		t.Fatalf("insert after failed checkpoint: %v", err)
	}
	// And a retried checkpoint succeeds.
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("retried checkpoint: %v", err)
	}
	d.Close()

	d2, err := quit.Open[int64, string](faultDir, faultOpts(faultio.FromImage(fs.ImageAt(faultio.Cut{Event: len(fs.Events())}))))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Len() != 41 {
		t.Fatalf("recovered %d entries, want 41", d2.Len())
	}
}

// TestDurableClearCrashRecover pins the Clear contract at the durable
// layer: Clear is logged before the in-memory swap, so a crash right
// after the acknowledgment recovers an empty, Validate-clean tree — even
// from the pessimal synced-bytes-only image.
func TestDurableClearCrashRecover(t *testing.T) {
	fs := faultio.NewMemFS()
	d, err := quit.Open[int64, string](faultDir, faultOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 200; i++ {
		if err := d.Insert(i, "x"); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := d.Clear(); err != nil {
		t.Fatal(err)
	}
	// Crash: no Close, reconstruct from synced bytes only.
	image := fs.ImageAt(faultio.Cut{Event: len(fs.Events()), SyncedOnly: true})
	d2, err := quit.Open[int64, string](faultDir, faultOpts(faultio.FromImage(image)))
	if err != nil {
		t.Fatalf("recovery after Clear+crash: %v", err)
	}
	defer d2.Close()
	if d2.Len() != 0 {
		t.Fatalf("recovered %d entries after a durable Clear, want 0", d2.Len())
	}
	if err := d2.Validate(); err != nil {
		t.Fatalf("recovered tree invalid: %v", err)
	}
	// And the cleared tree is fully usable going forward.
	if _, err := d2.PutBatch([]int64{3, 1, 2}, []string{"c", "a", "b"}); err != nil {
		t.Fatal(err)
	}
	if d2.Len() != 3 {
		t.Fatalf("post-recovery batch: %d entries", d2.Len())
	}
}

// TestDurableBatchSyncAmplification pins the tentpole's durability win:
// under SyncAlways, a batched ingest must cost one fsync per batch, not
// one per key.
func TestDurableBatchSyncAmplification(t *testing.T) {
	countSyncs := func(fs *faultio.MemFS) int {
		n := 0
		for _, e := range fs.Events() {
			if e.Kind == faultio.EvSync {
				n++
			}
		}
		return n
	}
	const total = 1000

	perKey := faultio.NewMemFS()
	d, err := quit.Open[int64, string](faultDir, faultOpts(perKey))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < total; i++ {
		if err := d.Insert(i, "v"); err != nil {
			t.Fatal(err)
		}
	}
	d.Close()

	batched := faultio.NewMemFS()
	d2, err := quit.Open[int64, string](faultDir, faultOpts(batched))
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]int64, total)
	vals := make([]string, total)
	for i := range keys {
		keys[i] = int64(i)
		vals[i] = "v"
	}
	if _, err := d2.PutBatch(keys, vals); err != nil {
		t.Fatal(err)
	}
	d2.Close()

	pk, b := countSyncs(perKey), countSyncs(batched)
	t.Logf("per-key syncs: %d, batched syncs: %d", pk, b)
	if b*10 > pk {
		t.Fatalf("batched ingest cost %d syncs vs %d per-key: want >= 10x fewer", b, pk)
	}
}
