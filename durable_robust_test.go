// Self-healing durability tests: transient-fault retry rescuing commits,
// disk-full degradation into read-only mode and Recover re-arming the
// tree, automatic checkpoints truncating the log, and the crash matrix
// extended across segment-rotation boundaries. These complement
// durable_fault_test.go, which covers the single-segment crash matrix.
package quit_test

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"github.com/quittree/quit"
	"github.com/quittree/quit/internal/faultio"
)

// recordedSleeps installs a recording sleeper so retry backoff takes no
// wall-clock time and the test can assert how often the log backed off.
func recordedSleeps(opts *quit.DurableOptions, sleeps *[]time.Duration) {
	opts.Retry.Backoff = time.Millisecond
	opts.Retry.MaxBackoff = 8 * time.Millisecond
	opts.Retry.Sleep = func(d time.Duration) { *sleeps = append(*sleeps, d) }
}

// TestDurableRetrySelfHealing is the issue's acceptance scenario: a
// fail-twice-then-succeed fsync schedule must not poison the log — the
// bounded retry loop absorbs it and the batch commits durably.
func TestDurableRetrySelfHealing(t *testing.T) {
	fs := faultio.NewMemFS()
	opts := faultOpts(fs)
	var sleeps []time.Duration
	recordedSleeps(&opts, &sleeps)
	d, err := quit.Open[int64, string](faultDir, opts)
	if err != nil {
		t.Fatal(err)
	}

	fs.FailSyncTimes("wal-", faultio.ErrInjected, 2)
	ks := []int64{1, 2, 3, 4, 5}
	vs := []string{"a", "b", "c", "d", "e"}
	if _, err := d.PutBatch(ks, vs); err != nil {
		t.Fatalf("PutBatch should heal through two transient fsync failures, got: %v", err)
	}
	if len(sleeps) != 2 {
		t.Fatalf("backoff sleeps = %v, want exactly 2 (one per failed attempt)", sleeps)
	}
	if sleeps[0] != time.Millisecond || sleeps[1] != 2*time.Millisecond {
		t.Fatalf("backoff sleeps = %v, want doubling from 1ms", sleeps)
	}
	st := d.DurabilityStats()
	if st.RetriesAttempted != 2 || st.RetriesSucceeded != 1 {
		t.Fatalf("stats = %+v, want RetriesAttempted=2 RetriesSucceeded=1", st)
	}
	// The log is healthy: later writes need no retries and still commit.
	if err := d.Insert(6, "f"); err != nil {
		t.Fatalf("insert after healed retry: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("close after healed retry: %v", err)
	}

	// The healed batch is durable: even the synced-bytes-only crash image
	// recovers it.
	image := fs.ImageAt(faultio.Cut{Event: len(fs.Events()), SyncedOnly: true})
	d2, err := quit.Open[int64, string](faultDir, faultOpts(faultio.FromImage(image)))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	for i, k := range ks {
		if v, ok := d2.Get(k); !ok || v != vs[i] {
			t.Fatalf("key %d after reopen = %q,%v, want %q", k, v, ok, vs[i])
		}
	}
	if v, ok := d2.Get(6); !ok || v != "f" {
		t.Fatalf("post-retry insert lost: got %q,%v", v, ok)
	}
}

// TestDurableRetryExhaustionPoisons pins the other side of the bound: a
// fault outlasting MaxRetries poisons the log, and the injected cause
// stays visible through the sticky error.
func TestDurableRetryExhaustionPoisons(t *testing.T) {
	fs := faultio.NewMemFS()
	opts := faultOpts(fs)
	opts.Retry.MaxRetries = 2
	var sleeps []time.Duration
	recordedSleeps(&opts, &sleeps)
	d, err := quit.Open[int64, string](faultDir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	fs.FailSyncTimes("wal-", faultio.ErrInjected, -1)
	err = d.Insert(1, "a")
	if err == nil {
		t.Fatal("insert committed through a permanently failing fsync")
	}
	if !errors.Is(err, faultio.ErrInjected) {
		t.Fatalf("poisoned error hides its cause: %v", err)
	}
	if len(sleeps) != 2 {
		t.Fatalf("sleeps = %v, want exactly MaxRetries=2 backoffs", sleeps)
	}
	st := d.DurabilityStats()
	if st.RetriesAttempted != 2 || st.RetriesSucceeded != 0 {
		t.Fatalf("stats = %+v, want RetriesAttempted=2 RetriesSucceeded=0", st)
	}
}

// TestDurableENOSPCReadOnly is the disk-full acceptance scenario: an
// injected ENOSPC during commit flips the tree read-only — writes fail
// with ErrReadOnly while concurrent reads keep serving — and Recover
// re-arms it once space frees.
func TestDurableENOSPCReadOnly(t *testing.T) {
	fs := faultio.NewMemFS()
	d, err := quit.Open[int64, string](faultDir, faultOpts(fs))
	if err != nil {
		t.Fatal(err)
	}

	const seeded = 50
	for i := int64(0); i < seeded; i++ {
		if err := d.Insert(i, fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}

	// The disk fills: every further wal fsync reports ENOSPC, forever.
	fs.FailSyncTimes("wal-", faultio.ErrNoSpace, -1)
	err = d.Insert(seeded, "doomed")
	if !errors.Is(err, quit.ErrReadOnly) {
		t.Fatalf("first write after ENOSPC = %v, want ErrReadOnly", err)
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("degraded error hides the ENOSPC cause: %v", err)
	}
	if !d.ReadOnly() {
		t.Fatal("ReadOnly() = false after ENOSPC degradation")
	}
	if !d.DurabilityStats().ReadOnly {
		t.Fatal("DurabilityStats().ReadOnly = false after degradation")
	}

	// Reads keep serving the pre-failure state while writers keep getting
	// rejected — genuinely concurrently.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := int64((g*37 + i) % seeded)
				if v, ok := d.Get(k); !ok || v != fmt.Sprintf("v%d", k) {
					t.Errorf("degraded read of key %d = %q,%v", k, v, ok)
					return
				}
			}
		}(g)
	}
	for i := 0; i < 20; i++ {
		if err := d.Insert(1000+int64(i), "x"); !errors.Is(err, quit.ErrReadOnly) {
			t.Errorf("degraded write %d = %v, want ErrReadOnly", i, err)
		}
	}
	wg.Wait()
	if n := d.Len(); n != seeded {
		t.Fatalf("Len() = %d while degraded, want %d", n, seeded)
	}
	n := 0
	d.Range(0, seeded, func(int64, string) bool { n++; return true })
	if n == 0 {
		t.Fatal("Range served nothing while degraded")
	}
	// Every write-side entry point reports the same typed mode.
	if err := d.Sync(); !errors.Is(err, quit.ErrReadOnly) {
		t.Fatalf("Sync while degraded = %v, want ErrReadOnly", err)
	}
	if _, err := d.PutBatch([]int64{1}, []string{"x"}); !errors.Is(err, quit.ErrReadOnly) {
		t.Fatalf("PutBatch while degraded = %v, want ErrReadOnly", err)
	}
	if _, _, err := d.Delete(1); !errors.Is(err, quit.ErrReadOnly) {
		t.Fatalf("Delete while degraded = %v, want ErrReadOnly", err)
	}

	// While space is still exhausted, Recover itself fails cleanly (the
	// snapshot needs room too) and the tree stays degraded.
	fs.FailSyncTimes("snap", faultio.ErrNoSpace, -1)
	if err := d.Recover(); err == nil {
		t.Fatal("Recover succeeded with the disk still full")
	}
	if !d.ReadOnly() {
		t.Fatal("failed Recover cleared read-only mode")
	}

	// Space frees: Recover snapshots the in-memory state, swaps in a
	// fresh log, and writes flow again.
	fs.ClearFaults()
	if err := d.Recover(); err != nil {
		t.Fatalf("Recover after space freed: %v", err)
	}
	if d.ReadOnly() {
		t.Fatal("ReadOnly() = true after successful Recover")
	}
	if err := d.Insert(seeded, "after-recover"); err != nil {
		t.Fatalf("write after Recover: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("close after Recover: %v", err)
	}

	// The recovered lineage reopens from a crash image with every
	// acknowledged write and nothing from the rejected ones.
	image := fs.ImageAt(faultio.Cut{Event: len(fs.Events()), SyncedOnly: true})
	d2, err := quit.Open[int64, string](faultDir, faultOpts(faultio.FromImage(image)))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if err := d2.Validate(); err != nil {
		t.Fatal(err)
	}
	got := treeContents(d2)
	if len(got) != seeded+1 {
		t.Fatalf("reopened tree has %d entries, want %d", len(got), seeded+1)
	}
	if got[seeded] != "after-recover" {
		t.Fatalf("post-Recover write lost across reopen: %q", got[seeded])
	}
	for i := int64(0); i < seeded; i++ {
		if got[i] != fmt.Sprintf("v%d", i) {
			t.Fatalf("key %d = %q after reopen", i, got[i])
		}
	}
}

// TestDurableAutoCheckpoint drives CheckpointPolicy: once the live log
// crosses MaxRecords, a background checkpoint compacts it into a
// snapshot, deletes covered segments, and the counters say so.
func TestDurableAutoCheckpoint(t *testing.T) {
	fs := faultio.NewMemFS()
	opts := faultOpts(fs)
	opts.SegmentBytes = 512
	opts.Checkpoint = quit.CheckpointPolicy{MaxRecords: 25}
	d, err := quit.Open[int64, string](faultDir, opts)
	if err != nil {
		t.Fatal(err)
	}

	const writes = 200
	for i := int64(0); i < writes; i++ {
		if err := d.Insert(i, fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// The trigger fires off the commit path; wait for at least one
	// automatic checkpoint to land.
	deadline := time.Now().Add(5 * time.Second)
	for d.DurabilityStats().AutoCheckpoints == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	st := d.DurabilityStats()
	if st.AutoCheckpoints == 0 {
		t.Fatalf("no automatic checkpoint after %d writes with MaxRecords=25; stats %+v", writes, st)
	}
	if st.Checkpoints < st.AutoCheckpoints {
		t.Fatalf("Checkpoints=%d < AutoCheckpoints=%d", st.Checkpoints, st.AutoCheckpoints)
	}
	if st.WALBytesReclaimed == 0 {
		t.Fatal("automatic checkpoint reclaimed no log bytes")
	}
	if st.WALLiveRecords >= writes {
		t.Fatalf("live log still holds %d records after auto-checkpoint", st.WALLiveRecords)
	}
	if st.SegmentsRotated == 0 {
		t.Fatal("512-byte segments never rotated under 200 inserts")
	}
	if err := d.Close(); err != nil { // Close drains the in-flight checkpoint
		t.Fatal(err)
	}

	// The truncated lineage reopens complete: snapshot plus surviving
	// segments cover all 200 acknowledged writes.
	image := fs.ImageAt(faultio.Cut{Event: len(fs.Events())})
	walFiles := 0
	for name := range image {
		if strings.Contains(name, "wal-") {
			walFiles++
		}
	}
	d2, err := quit.Open[int64, string](faultDir, faultOpts(faultio.FromImage(image)))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if err := d2.Validate(); err != nil {
		t.Fatal(err)
	}
	if n := d2.Len(); n != writes {
		t.Fatalf("reopen after auto-checkpoint: %d entries, want %d (image had %d wal files)", n, writes, walFiles)
	}
	if d2.Recovery().Snapshot == "" {
		t.Fatal("reopen found no snapshot although auto-checkpoints ran")
	}
}

// rotationOpts shrinks segments so the scripted workload rotates many
// times, and arms auto-checkpointing so rotation, background snapshots,
// and garbage collection all interleave with commits in the schedule.
func rotationOpts(fs *faultio.MemFS) quit.DurableOptions {
	opts := faultOpts(fs)
	opts.SegmentBytes = 300
	opts.Checkpoint = quit.CheckpointPolicy{MaxRecords: 60}
	return opts
}

func countWALFiles(image map[string][]byte) int {
	n := 0
	for name := range image {
		if strings.Contains(name, "wal-") {
			n++
		}
	}
	return n
}

// TestCrashRecoveryAcrossRotation is the crash matrix extended across
// segment rotations: the scripted workload runs with 300-byte segments
// and auto-checkpointing, and every schedule boundary — plus synced-only
// and torn mid-write variants — must recover a Validate-clean tree
// holding a model prefix that covers all acknowledged steps. At least 50
// crash points must land while the image spans multiple segments, so the
// cross-segment replay chain (final-fsync-before-rotate, the gap rule,
// torn-tail-only-in-the-last-segment) is exercised, not assumed.
func TestCrashRecoveryAcrossRotation(t *testing.T) {
	fs := faultio.NewMemFS()
	models, ackEvent := crashWorkloadOpts(t, fs, rotationOpts(fs))
	events := fs.Events()
	t.Logf("rotation schedule: %d events, %d steps", len(events), len(ackEvent))

	multiSegment := 0
	for cut := 0; cut <= len(events); cut++ {
		g := guaranteedAt(ackEvent, cut)
		image := fs.ImageAt(faultio.Cut{Event: cut})
		if countWALFiles(image) >= 2 {
			multiSegment++
		}
		recoverAndCheck(t, image, models, g,
			fmt.Sprintf("rot-cut=%d", cut), true)
		recoverAndCheck(t, fs.ImageAt(faultio.Cut{Event: cut, SyncedOnly: true}), models, g,
			fmt.Sprintf("rot-cut=%d/synced-only", cut), true)
		if cut < len(events) && events[cut].Kind == faultio.EvWrite {
			n := len(events[cut].Data)
			for _, mid := range []int{1, n / 2, n - 1} {
				if mid <= 0 || mid >= n {
					continue
				}
				recoverAndCheck(t, fs.ImageAt(faultio.Cut{Event: cut, MidBytes: mid}), models, g,
					fmt.Sprintf("rot-cut=%d/mid=%d", cut, mid), true)
			}
		}
	}
	if multiSegment < 50 {
		t.Fatalf("only %d crash points span a segment rotation, want >= 50 — shrink SegmentBytes", multiSegment)
	}
}

// TestCrashRecoverySegmentBoundaryCorruption sweeps bit-flips and
// truncations over every live segment of a multi-segment image,
// concentrating on segment edges: recovery must yield a typed error
// (ErrWALGap for unreachable mid-chain history, ErrBadSnapshot for a
// broken base) or a valid acknowledged prefix — never a wrong tree.
func TestCrashRecoverySegmentBoundaryCorruption(t *testing.T) {
	fs := faultio.NewMemFS()
	opts := faultOpts(fs)
	opts.SegmentBytes = 300 // rotation without auto-checkpoint: keep many segments live
	models, _ := crashWorkloadOpts(t, fs, opts)
	image := fs.ImageAt(faultio.Cut{Event: len(fs.Events())})
	if countWALFiles(image) < 3 {
		t.Fatalf("final image has %d wal segments, want >= 3 for a boundary sweep", countWALFiles(image))
	}

	corrupt := func(name string, data []byte, label string) {
		t.Helper()
		mutated := map[string][]byte{}
		for n, d := range image {
			mutated[n] = d
		}
		mutated[name] = data
		recoverAndCheck(t, mutated, models, 0, label, false)
	}

	for name, data := range image {
		if !strings.Contains(name, "wal-") || len(data) == 0 {
			continue
		}
		// Bit-flips dense at both segment edges — the bytes a rotation
		// writes last and a replay reads first — plus a coarse interior
		// stride.
		offsets := map[int]bool{}
		for i := 0; i < 16 && i < len(data); i++ {
			offsets[i] = true
			offsets[len(data)-1-i] = true
		}
		for off := 0; off < len(data); off += 41 {
			offsets[off] = true
		}
		for off := range offsets {
			corrupt(name, faultio.FlipBit(data, off, uint(off%8)),
				fmt.Sprintf("segflip %s@%d", name, off))
		}
		// Truncations: a torn tail, a mid-segment cut, and a segment
		// reduced to nothing. In a non-final segment these open a gap in
		// the chain and must surface as ErrWALGap, not as silent loss.
		for _, keep := range []int{0, 1, len(data) / 2, len(data) - 1, len(data) - 7} {
			if keep < 0 || keep >= len(data) {
				continue
			}
			corrupt(name, data[:keep], fmt.Sprintf("segtrunc %s@%d", name, keep))
		}
	}
}

// TestCrashRecoveryMidChainTruncationIsTyped pins the gap rule directly:
// truncating a non-final segment of a multi-segment image must make Open
// fail with ErrWALGap — acknowledged history beyond the tear is
// unreachable and silently resuming past it would serve a wrong tree.
func TestCrashRecoveryMidChainTruncationIsTyped(t *testing.T) {
	fs := faultio.NewMemFS()
	opts := faultOpts(fs)
	opts.SegmentBytes = 300
	crashWorkloadOpts(t, fs, opts)
	image := fs.ImageAt(faultio.Cut{Event: len(fs.Events())})

	var walNames []string
	for name := range image {
		if strings.Contains(name, "wal-") {
			walNames = append(walNames, name)
		}
	}
	if len(walNames) < 3 {
		t.Fatalf("want >= 3 segments, got %d", len(walNames))
	}
	// Lexicographic max is the final segment (zero-padded names); pick
	// any other and tear it mid-record.
	last := walNames[0]
	for _, n := range walNames {
		if n > last {
			last = n
		}
	}
	torn := ""
	for _, n := range walNames {
		if n != last && len(image[n]) > 10 {
			torn = n
			break
		}
	}
	if torn == "" {
		t.Fatal("no non-final segment large enough to tear")
	}
	mutated := map[string][]byte{}
	for n, d := range image {
		mutated[n] = d
	}
	mutated[torn] = mutated[torn][:len(mutated[torn])-5]

	_, err := quit.Open[int64, string](faultDir, faultOpts(faultio.FromImage(mutated)))
	if err == nil {
		t.Fatalf("Open succeeded with non-final segment %s torn", torn)
	}
	if !errors.Is(err, quit.ErrWALGap) {
		t.Fatalf("mid-chain tear error = %v, want ErrWALGap", err)
	}

	// Deleting a mid-chain segment outright is the same gap — including
	// when its successor is the *final* segment, which would otherwise be
	// mistaken for the snapshot-fallback degradation and silently drop
	// the deleted segment's acknowledged records.
	for _, victim := range walNames {
		if victim == last {
			continue
		}
		removed := map[string][]byte{}
		for n, d := range image {
			if n != victim {
				removed[n] = d
			}
		}
		_, err := quit.Open[int64, string](faultDir, faultOpts(faultio.FromImage(removed)))
		if !errors.Is(err, quit.ErrWALGap) {
			t.Fatalf("Open with segment %s deleted = %v, want ErrWALGap", victim, err)
		}
	}
}
